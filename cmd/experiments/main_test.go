package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCheapExperiments(t *testing.T) {
	for _, which := range []string{"fig1", "fig5", "table2", "table4", "figs8-11"} {
		if err := run([]string{"-run", which}); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	ferr := f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = orig
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// TestShardMergeCLI drives the -checkpoint-dir/-shard/-merge flags end to
// end on the cheap table4 experiment: two shards journaled separately and
// merged must print the same table as the plain run.
func TestShardMergeCLI(t *testing.T) {
	want := captureStdout(t, func() error { return run([]string{"-run", "table4"}) })
	dir := t.TempDir()
	for _, shard := range []string{"1/2", "2/2"} {
		out := captureStdout(t, func() error {
			return run([]string{"-run", "table4", "-checkpoint-dir", dir, "-shard", shard})
		})
		if !strings.Contains(out, "shard "+shard+" complete") {
			t.Fatalf("shard %s: no completion note in output:\n%s", shard, out)
		}
		if strings.Contains(out, "Table IV") {
			t.Fatalf("shard %s rendered a partial table", shard)
		}
	}
	got := captureStdout(t, func() error {
		return run([]string{"-run", "table4", "-checkpoint-dir", dir, "-merge"})
	})
	if got != want {
		t.Errorf("merged table differs from plain run:\n--- plain ---\n%s--- merged ---\n%s", want, got)
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "table4", "-resume"},
		{"-run", "table4", "-shard", "1/2"},
		{"-run", "table4", "-merge"},
		{"-run", "table4", "-checkpoint-dir", t.TempDir(), "-merge", "-shard", "1/2"},
		{"-run", "table4", "-checkpoint-dir", t.TempDir(), "-shard", "3/2"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%v: inconsistent checkpoint flags accepted", args)
		}
	}
}

func TestRunCampaignExperimentsShortBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments; run without -short")
	}
	for _, args := range [][]string{
		{"-run", "table6", "-ablation", "30m"},
		{"-run", "fig12", "-fuzz", "30m", "-window", "400s"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "table99"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

// TestScalingCLI drives -run scaling end to end at a tiny budget: the
// report file must gate cleanly against itself, and the printed table must
// carry the ranked bottleneck section.
func TestScalingCLI(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scaling.json")
	printed := captureStdout(t, func() error {
		return run([]string{"-run", "scaling", "-fuzz", "30m",
			"-scaling-workers", "1,2", "-scaling-out", out, "-git-sha", "test"})
	})
	for _, want := range []string{"Fleet scaling", "Ranked serialization sources"} {
		if !strings.Contains(printed, want) {
			t.Errorf("scaling output missing %q:\n%s", want, printed)
		}
	}
	// Re-run gating against the report just written: same workload, same
	// host, so efficiency cannot have regressed 10%.
	gated := captureStdout(t, func() error {
		return run([]string{"-run", "scaling", "-fuzz", "30m",
			"-scaling-workers", "1,2", "-scaling-baseline", out})
	})
	if !strings.Contains(gated, "scaling gate: efficiency within 10%") {
		t.Errorf("no gate confirmation in output:\n%s", gated)
	}
}

func TestScalingFlagValidation(t *testing.T) {
	if err := run([]string{"-run", "scaling", "-scaling-workers", "1,zero"}); err == nil {
		t.Error("bad -scaling-workers accepted")
	}
	if err := run([]string{"-run", "scaling", "-scaling-baseline", "/no/such/file.json"}); err == nil {
		t.Error("missing -scaling-baseline file accepted")
	}
}

// TestObsAddrFlag pins the fixed -pprof pattern: the server binds before
// any experiment work, serves the unified endpoints, and a bad address is
// an immediate error instead of a swallowed goroutine print.
func TestObsAddrFlag(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-obs-addr", "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad -obs-addr accepted")
	}
	if err := run([]string{"-run", "fig1", "-obs-addr", "127.0.0.1:0"}); err != nil {
		t.Fatalf("-obs-addr with ephemeral port: %v", err)
	}
	// The deprecated alias must keep working.
	if err := run([]string{"-run", "fig1", "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatalf("-pprof alias: %v", err)
	}
}
