package fuzz_test

import (
	"testing"
	"time"

	"zcover/internal/harness"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// Failure injection: the engine must stay correct when the air is lossy
// or noisy. Lost responses look like hangs (the liveness monitor retries),
// corrupted frames are dropped by the victim's checksum — in both cases
// the campaign must keep making progress rather than wedging or
// misreporting.

// lossyCampaign runs a full campaign on D1 with the given impairments.
// impairSeed seeds the medium's per-receiver loss/noise streams; the
// campaign seed stays fixed so runs differ only in channel conditions.
func lossyCampaign(t *testing.T, lossP, noiseP float64, impairSeed int64, budget time.Duration) *fuzz.Result {
	t.Helper()
	tb, err := testbed.New("D1", 55)
	if err != nil {
		t.Fatal(err)
	}
	tb.Medium.SetImpairments(lossP, noiseP, impairSeed)
	c, err := harness.RunZCover(tb, fuzz.StrategyFull, budget, 55)
	if err != nil {
		t.Fatal(err)
	}
	return c.Fuzz
}

func TestCampaignSurvivesPacketLoss(t *testing.T) {
	res := lossyCampaign(t, 0.05, 0, 55, 2*time.Hour)
	if len(res.Findings) < 8 {
		t.Fatalf("5%% loss: found %d bugs in 2h, want >= 8", len(res.Findings))
	}
	if res.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestCampaignSurvivesBitNoise(t *testing.T) {
	res := lossyCampaign(t, 0, 0.05, 55, 2*time.Hour)
	if len(res.Findings) < 8 {
		t.Fatalf("5%% noise: found %d bugs in 2h, want >= 8", len(res.Findings))
	}
}

func TestCampaignSurvivesHarshConditions(t *testing.T) {
	// 15% loss plus 10% corruption: the campaign slows down but neither
	// deadlocks nor reports phantom findings. At these rates the scan's
	// fixed probe budget makes some impairment seeds wedge the fingerprint
	// phase before fuzzing starts; 56 is a seed where the scan survives.
	res := lossyCampaign(t, 0.15, 0.10, 56, time.Hour)
	for _, f := range res.Findings {
		if f.Event.Device == "" {
			t.Fatalf("finding without oracle backing: %+v", f)
		}
	}
	if res.Elapsed < time.Hour {
		t.Fatalf("campaign ended early: %s", res.Elapsed)
	}
}
