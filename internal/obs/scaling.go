package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"zcover/internal/report"
)

// HostInfo stamps a measurement with the hardware and build it came from,
// so bench trajectories stay attributable across machines (a flat scaling
// curve on a 1-core container and on a 32-core server mean very different
// things).
type HostInfo struct {
	GitSHA     string `json:"git_sha,omitempty"`
	GoVersion  string `json:"go_version"`
	Gomaxprocs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Host reads the current process's host stamp. gitSHA comes from the
// caller (scripts pass it; binaries have no business shelling out to git).
func Host(gitSHA string) HostInfo {
	return HostInfo{
		GitSHA:     gitSHA,
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// ScalingPoint is one worker-count measurement of the campaign fleet.
type ScalingPoint struct {
	// Workers is the requested worker count; EffectiveWorkers is what the
	// fleet actually ran after the oversubscription cap.
	Workers          int `json:"workers"`
	EffectiveWorkers int `json:"effective_workers"`
	// Oversubscribed marks a raw measurement taken with the cap disabled
	// (fleet.Config.AllowOversubscription) to quantify the overhead the
	// cap removes.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
	// WallSec is the fleet's wall-clock run time; SimSec the simulated
	// campaign time it delivered; SimRate their ratio (simsec/s).
	WallSec float64 `json:"wall_sec"`
	SimSec  float64 `json:"sim_sec"`
	SimRate float64 `json:"sim_rate"`
	// Speedup is SimRate over the workers=1 point's. IdealSpeedup is the
	// host's best case: min(workers, GOMAXPROCS). Efficiency is their
	// ratio — 1.0 means the fleet extracts everything the host offers.
	Speedup      float64 `json:"speedup"`
	IdealSpeedup float64 `json:"ideal_speedup"`
	Efficiency   float64 `json:"efficiency"`
	// Phases is wall time by phase across all workers, descending.
	Phases []PhaseShare `json:"phases,omitempty"`
	// IdleSec sums worker idle time (waiting for jobs or drained).
	IdleSec float64 `json:"idle_sec"`
	// GCPauseNs is the GC stop-the-world total accumulated during the
	// point's run.
	GCPauseNs int64 `json:"gc_pause_ns,omitempty"`
}

// Bottleneck is one ranked serialization source.
type Bottleneck struct {
	Rank int `json:"rank"`
	// Kind classifies the source: "host-parallelism", "oversubscription",
	// "phase", "lock", "gc", "imbalance".
	Kind string `json:"kind"`
	// Detail names the concrete source ("fuzz loop", a lock site, ...).
	Detail string `json:"detail"`
	// WallShare is the fraction of fleet wall time attributed to it
	// (0 when the evidence is not a wall share).
	WallShare float64 `json:"wall_share,omitempty"`
	// Evidence is the measured justification, human-readable.
	Evidence string `json:"evidence"`
}

// ScalingReport is the bench-scaling output: BENCH_scaling.json on disk,
// the ranked bottleneck table on stdout.
type ScalingReport struct {
	Host        HostInfo       `json:"host"`
	Campaign    string         `json:"campaign"`
	Points      []ScalingPoint `json:"points"`
	Bottlenecks []Bottleneck   `json:"bottlenecks"`
	// Locks is the contended-lock table from the mutex profile (empty
	// when contention profiling found nothing — the healthy case).
	Locks []LockSite `json:"locks,omitempty"`
}

// baseline returns the workers=1 non-oversubscribed point, or nil.
func (r *ScalingReport) baseline() *ScalingPoint {
	for i := range r.Points {
		if r.Points[i].Workers == 1 && !r.Points[i].Oversubscribed {
			return &r.Points[i]
		}
	}
	return nil
}

// maxPoint returns the highest-worker non-oversubscribed point, or nil.
func (r *ScalingReport) maxPoint() *ScalingPoint {
	var best *ScalingPoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Oversubscribed {
			continue
		}
		if best == nil || p.Workers > best.Workers {
			best = p
		}
	}
	return best
}

// Finalize computes the derived fields (speedup, efficiency) and the
// deterministic bottleneck ranking from the raw points. Call it once
// after the points, locks, and host stamp are filled in.
func (r *ScalingReport) Finalize() {
	base := r.baseline()
	for i := range r.Points {
		p := &r.Points[i]
		if p.WallSec > 0 {
			p.SimRate = p.SimSec / p.WallSec
		}
		p.IdealSpeedup = float64(min(p.Workers, r.Host.Gomaxprocs))
		if p.IdealSpeedup < 1 {
			p.IdealSpeedup = 1
		}
		if base != nil && base.SimRate > 0 {
			p.Speedup = p.SimRate / base.SimRate
			p.Efficiency = p.Speedup / p.IdealSpeedup
		}
	}
	r.rank()
}

// rank orders the measured serialization sources, most wall time first.
// The ranking is pure arithmetic over the points — rerunning the sweep on
// the same data reproduces it exactly.
func (r *ScalingReport) rank() {
	r.Bottlenecks = nil
	maxp := r.maxPoint()
	base := r.baseline()
	if maxp == nil || base == nil {
		return
	}

	// Host parallelism: when the sweep asks for more workers than the
	// runtime can schedule, the processor count — not any lock — is the
	// binding serializer. This is the finding that explains a flat curve
	// on a small host.
	if maxp.Workers > r.Host.Gomaxprocs {
		share := 0.0
		if maxp.IdealSpeedup > 0 && float64(maxp.Workers) > 0 {
			share = 1 - maxp.IdealSpeedup/float64(maxp.Workers)
		}
		r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
			Kind:      "host-parallelism",
			Detail:    fmt.Sprintf("GOMAXPROCS=%d < workers=%d", r.Host.Gomaxprocs, maxp.Workers),
			WallShare: share,
			Evidence: fmt.Sprintf("ideal speedup capped at %.0fx on this host; measured %.2fx (efficiency %.2f)",
				maxp.IdealSpeedup, maxp.Speedup, maxp.Efficiency),
		})
	}

	// Oversubscription overhead: a raw (cap-disabled) point at the same
	// worker count that is slower than the capped one is pure scheduler
	// and cache-interleaving tax.
	for i := range r.Points {
		raw := &r.Points[i]
		if !raw.Oversubscribed {
			continue
		}
		for j := range r.Points {
			capped := &r.Points[j]
			if capped.Oversubscribed || capped.Workers != raw.Workers {
				continue
			}
			if capped.SimRate > 0 && raw.SimRate < capped.SimRate {
				loss := 1 - raw.SimRate/capped.SimRate
				r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
					Kind:      "oversubscription",
					Detail:    fmt.Sprintf("%d worker goroutines on %d-way host", raw.Workers, r.Host.Gomaxprocs),
					WallShare: loss,
					Evidence: fmt.Sprintf("uncapped fan-out costs %.1f%% sim-rate (%.0f vs %.0f simsec/s); the fleet now caps workers at GOMAXPROCS",
						loss*100, raw.SimRate, capped.SimRate),
				})
			}
		}
	}

	// Idle tail (load imbalance / queue starvation): idle share of the
	// max-worker point's total worker time.
	{
		totalWorkerSec := maxp.WallSec * float64(maxp.EffectiveWorkers)
		if totalWorkerSec > 0 && maxp.IdleSec/totalWorkerSec > 0.10 {
			r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
				Kind:      "imbalance",
				Detail:    fmt.Sprintf("worker idle tail at workers=%d", maxp.Workers),
				WallShare: maxp.IdleSec / totalWorkerSec,
				Evidence: fmt.Sprintf("%.1fs of %.1fs worker time idle (%.0f%%) — stragglers or queue starvation",
					maxp.IdleSec, totalWorkerSec, 100*maxp.IdleSec/totalWorkerSec),
			})
		}
	}

	// Dominant phase: where the busy wall time actually goes, so the
	// next optimization target is named even when scaling is healthy.
	for _, ps := range maxp.Phases {
		if ps.Phase == PhaseIdle {
			continue
		}
		r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
			Kind:      "phase",
			Detail:    fmt.Sprintf("%s phase", ps.Phase),
			WallShare: ps.Share,
			Evidence:  fmt.Sprintf("%.1fs of worker wall time (%.0f%% of all phases) at workers=%d", ps.WallSec, ps.Share*100, maxp.Workers),
		})
		break // only the dominant one; the full breakdown is in Points
	}

	// Contended locks: anything the mutex profile caught.
	for i, ls := range r.Locks {
		if i >= 3 || ls.Count == 0 {
			break
		}
		r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
			Kind:     "lock",
			Detail:   ls.Site,
			Evidence: fmt.Sprintf("%d sampled contentions, %d delay cycles", ls.Count, ls.DelayCycles),
		})
	}

	// GC stop-the-world share.
	if maxp.GCPauseNs > 0 && maxp.WallSec > 0 {
		share := float64(maxp.GCPauseNs) / 1e9 / maxp.WallSec
		if share > 0.02 {
			r.Bottlenecks = append(r.Bottlenecks, Bottleneck{
				Kind:      "gc",
				Detail:    "garbage-collector stop-the-world",
				WallShare: share,
				Evidence:  fmt.Sprintf("%.1fms STW over %.1fs wall (%.1f%%)", float64(maxp.GCPauseNs)/1e6, maxp.WallSec, share*100),
			})
		}
	}

	// Rank true serializers (host limits, oversubscription, locks, GC,
	// imbalance) by wall share; the dominant-phase entry is attribution —
	// where healthy busy time goes — so it sorts after them. Ties break by
	// kind then detail for determinism.
	sort.SliceStable(r.Bottlenecks, func(i, j int) bool {
		bi, bj := r.Bottlenecks[i], r.Bottlenecks[j]
		if (bi.Kind == "phase") != (bj.Kind == "phase") {
			return bj.Kind == "phase"
		}
		if bi.WallShare != bj.WallShare {
			return bi.WallShare > bj.WallShare
		}
		if bi.Kind != bj.Kind {
			return bi.Kind < bj.Kind
		}
		return bi.Detail < bj.Detail
	})
	for i := range r.Bottlenecks {
		r.Bottlenecks[i].Rank = i + 1
	}
}

// Table renders the scaling points and the ranked bottleneck list.
func (r *ScalingReport) Table() string {
	pts := &report.Table{
		Title:   fmt.Sprintf("Fleet scaling — %s (GOMAXPROCS %d, %d CPUs, %s)", r.Campaign, r.Host.Gomaxprocs, r.Host.NumCPU, r.Host.GoVersion),
		Headers: []string{"Workers", "Effective", "Wall", "Sim-rate", "Speedup", "Ideal", "Efficiency", "Idle"},
	}
	for _, p := range r.Points {
		w := fmt.Sprintf("%d", p.Workers)
		if p.Oversubscribed {
			w += " (raw)"
		}
		pts.AddRow(w, fmt.Sprintf("%d", p.EffectiveWorkers),
			fmt.Sprintf("%.2fs", p.WallSec),
			fmt.Sprintf("%.0f simsec/s", p.SimRate),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.0fx", p.IdealSpeedup),
			fmt.Sprintf("%.2f", p.Efficiency),
			fmt.Sprintf("%.2fs", p.IdleSec))
	}
	btl := &report.Table{
		Title:   "Ranked serialization sources",
		Headers: []string{"#", "Kind", "Source", "Wall share", "Evidence"},
	}
	for _, b := range r.Bottlenecks {
		share := "-"
		if b.WallShare > 0 {
			share = fmt.Sprintf("%.0f%%", b.WallShare*100)
		}
		btl.AddRow(fmt.Sprintf("%d", b.Rank), b.Kind, b.Detail, share, b.Evidence)
	}
	return pts.String() + "\n" + btl.String()
}

// WriteJSON writes the report as one indented JSON document.
func (r *ScalingReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the BENCH_scaling.json artifact).
func (r *ScalingReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadScalingReport parses a report written by WriteJSON.
func ReadScalingReport(rd io.Reader) (*ScalingReport, error) {
	var r ScalingReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: parsing scaling report: %w", err)
	}
	return &r, nil
}

// LoadScalingReport reads a report file.
func LoadScalingReport(path string) (*ScalingReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return ReadScalingReport(f)
}

// CheckRegression compares a fresh report's parallel efficiency at its
// highest worker count against a committed baseline and errors when it
// dropped by more than maxDrop (relative: 0.10 = 10%). Efficiency is
// normalized to each host's own ideal speedup, so a 1-core container and
// an 8-core CI runner gate against the same bar.
func CheckRegression(baseline, fresh *ScalingReport, maxDrop float64) error {
	bp, fp := baseline.maxPoint(), fresh.maxPoint()
	if bp == nil || fp == nil {
		return fmt.Errorf("obs: scaling report missing measurement points")
	}
	if bp.Efficiency <= 0 {
		return fmt.Errorf("obs: baseline efficiency is zero; refresh the committed BENCH_scaling.json")
	}
	floor := bp.Efficiency * (1 - maxDrop)
	if fp.Efficiency < floor {
		return fmt.Errorf("obs: parallel efficiency at workers=%d regressed: %.3f < %.3f (baseline %.3f − %.0f%% allowance)",
			fp.Workers, fp.Efficiency, floor, bp.Efficiency, maxDrop*100)
	}
	return nil
}
