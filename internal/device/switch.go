package device

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// BinarySwitch emulates testbed device D9: a GE/Jasco ZW4201-style legacy
// smart switch with no encryption support (Table II). It processes BASIC
// and SWITCH_BINARY in clear text — the injection-prone legacy behaviour
// the paper's threat model describes.
type BinarySwitch struct {
	node     *Node
	identity Identity
	hub      protocol.NodeID
	on       bool
	setCount int
}

// NewBinarySwitch attaches a legacy binary switch to the testbed.
func NewBinarySwitch(cfg Config, hub protocol.NodeID) *BinarySwitch {
	s := &BinarySwitch{
		hub: hub,
		identity: Identity{
			Basic:      BasicTypeRoutingSlave,
			Generic:    GenericTypeSwitchBinary,
			Specific:   0x01,
			Capability: CapListening | CapRouting,
			Security:   0, // no encryption support
			Classes: []cmdclass.ClassID{
				cmdclass.ClassBasic,
				cmdclass.ClassSwitchBinary,
				cmdclass.ClassManufacturerSpec,
				cmdclass.ClassVersion,
			},
		},
	}
	s.node = NewNode(cfg)
	s.node.Handler = s.handle
	s.node.Repeater = true // mains-powered listening node: repeats for the mesh
	return s
}

// Node exposes the underlying node.
func (s *BinarySwitch) Node() *Node { return s.node }

// Join puts the switch in learn mode and announces it to an including
// controller (the user pressing the inclusion button).
func (s *BinarySwitch) Join() error { return JoinNetwork(s.node, s.identity) }

// Identity reports the advertised NIF identity.
func (s *BinarySwitch) Identity() Identity { return s.identity }

// On reports the switch state.
func (s *BinarySwitch) On() bool { return s.on }

// SetCount reports how many set operations were applied.
func (s *BinarySwitch) SetCount() int { return s.setCount }

// ReportStatus sends an unsolicited SWITCH_BINARY report to the hub —
// periodic event traffic for the passive sniffer.
func (s *BinarySwitch) ReportStatus() error {
	v := byte(0x00)
	if s.on {
		v = 0xFF
	}
	return s.node.Send(s.hub, []byte{byte(cmdclass.ClassSwitchBinary), byte(cmdclass.CmdSwitchBinaryReport), v})
}

// handle is the switch's application dispatch.
func (s *BinarySwitch) handle(f *protocol.Frame) {
	if HandleInclusion(s.node, f) {
		return
	}
	payload := f.Payload
	if target, ok := IsNIFRequest(payload); ok && (target == 0 || target == s.node.ID()) {
		_ = s.node.Send(f.Src, s.identity.NIFPayload())
		return
	}
	if len(payload) < 2 {
		return
	}
	switch cmdclass.ClassID(payload[0]) {
	case cmdclass.ClassBasic, cmdclass.ClassSwitchBinary:
		switch cmdclass.CommandID(payload[1]) {
		case cmdclass.CmdSwitchBinarySet:
			if len(payload) >= 3 {
				s.on = payload[2] != 0x00
				s.setCount++
			}
		case cmdclass.CmdSwitchBinaryGet:
			v := byte(0x00)
			if s.on {
				v = 0xFF
			}
			_ = s.node.Send(f.Src, []byte{payload[0], byte(cmdclass.CmdSwitchBinaryReport), v})
		}
	case cmdclass.ClassVersion:
		if cmdclass.CommandID(payload[1]) == cmdclass.CmdVersionGet {
			_ = s.node.Send(f.Src, []byte{byte(cmdclass.ClassVersion), byte(cmdclass.CmdVersionReport), 0x06, 0x04, 0x05, 0x01, 0x02})
		}
	}
}
