package protocol

import (
	"errors"
	"fmt"
)

// Source routing (G.9959 §8.1.4-style routed frames). Z-Wave is a mesh:
// when two nodes are out of direct RF range, the sender prepends a routing
// header naming up to four repeaters. Every repeater in turn retransmits
// the frame, advancing the hop index, until the final repeater's
// transmission reaches the destination.
//
// On the wire the routing header rides at the front of the payload area of
// a frame whose frame-control header type is "routed":
//
//	[status] [hops] [repeater1..repeaterN] <APL payload>
//
// status carries the direction and failure flags; hops packs the repeater
// count in the high nibble and the current hop index in the low nibble.

// MaxRepeaters is the longest allowed repeater list.
const MaxRepeaters = 4

// Routing status bits.
const (
	routeDirInbound byte = 0x01 // response travelling back to the origin
	routeFailed     byte = 0x02 // a repeater reported delivery failure
)

// RouteHeader is the parsed routing header of a routed frame.
type RouteHeader struct {
	// Inbound marks a frame travelling back along the route.
	Inbound bool
	// Failed marks a route-failure report.
	Failed bool
	// Repeaters is the source route, in forwarding order.
	Repeaters []NodeID
	// Hop is the index of the repeater whose turn it is to transmit;
	// Hop == len(Repeaters) means the frame is on its final leg.
	Hop int
	// Reserved preserves undefined status bits so that forwarding a frame
	// does not silently normalise them.
	Reserved byte
}

// Routing errors.
var (
	// ErrBadRoute indicates an unusable repeater list.
	ErrBadRoute = errors.New("protocol: invalid source route")
	// ErrNotRouted indicates a payload without a routing header.
	ErrNotRouted = errors.New("protocol: not a routed payload")
)

// EncodeRoutedPayload prepends the routing header to an application
// payload.
func EncodeRoutedPayload(rh RouteHeader, apl []byte) ([]byte, error) {
	if len(rh.Repeaters) == 0 || len(rh.Repeaters) > MaxRepeaters {
		return nil, fmt.Errorf("%w: %d repeaters", ErrBadRoute, len(rh.Repeaters))
	}
	if rh.Hop < 0 || rh.Hop > len(rh.Repeaters) {
		return nil, fmt.Errorf("%w: hop %d of %d", ErrBadRoute, rh.Hop, len(rh.Repeaters))
	}
	for _, r := range rh.Repeaters {
		if !r.IsUnicast() {
			return nil, fmt.Errorf("%w: repeater %s", ErrBadRoute, r)
		}
	}
	status := rh.Reserved &^ (routeDirInbound | routeFailed)
	if rh.Inbound {
		status |= routeDirInbound
	}
	if rh.Failed {
		status |= routeFailed
	}
	out := make([]byte, 0, 2+len(rh.Repeaters)+len(apl))
	out = append(out, status, byte(len(rh.Repeaters))<<4|byte(rh.Hop))
	for _, r := range rh.Repeaters {
		out = append(out, byte(r))
	}
	return append(out, apl...), nil
}

// ParseRoutedPayload splits a routed frame's payload into its routing
// header and the application payload. The returned APL aliases payload.
func ParseRoutedPayload(payload []byte) (RouteHeader, []byte, error) {
	if len(payload) < 3 {
		return RouteHeader{}, nil, fmt.Errorf("%w: %d bytes", ErrNotRouted, len(payload))
	}
	status := payload[0]
	count := int(payload[1] >> 4)
	hop := int(payload[1] & 0x0F)
	if count == 0 || count > MaxRepeaters || hop > count {
		return RouteHeader{}, nil, fmt.Errorf("%w: count=%d hop=%d", ErrBadRoute, count, hop)
	}
	if len(payload) < 2+count {
		return RouteHeader{}, nil, fmt.Errorf("%w: truncated repeater list", ErrBadRoute)
	}
	rh := RouteHeader{
		Inbound:  status&routeDirInbound != 0,
		Failed:   status&routeFailed != 0,
		Hop:      hop,
		Reserved: status &^ (routeDirInbound | routeFailed),
	}
	for i := 0; i < count; i++ {
		r := NodeID(payload[2+i])
		if !r.IsUnicast() {
			return RouteHeader{}, nil, fmt.Errorf("%w: repeater %s", ErrBadRoute, r)
		}
		rh.Repeaters = append(rh.Repeaters, r)
	}
	return rh, payload[2+count:], nil
}

// NewRoutedFrame builds a routed data frame carrying apl via the given
// repeaters (hop 0: the first repeater transmits next).
func NewRoutedFrame(home HomeID, src, dst NodeID, repeaters []NodeID, apl []byte) (*Frame, error) {
	payload, err := EncodeRoutedPayload(RouteHeader{Repeaters: repeaters}, apl)
	if err != nil {
		return nil, err
	}
	f := NewDataFrame(home, src, dst, payload)
	f.Control.Header = HeaderRouted
	f.Control.AckRequested = false // routed hops use route-level acks
	return f, nil
}
