package oracle

import (
	"strings"
	"testing"
	"time"

	"zcover/internal/coverage"
	"zcover/internal/vtime"
)

func TestBusEmitAndEvents(t *testing.T) {
	var b Bus
	e := Event{At: vtime.SimEpoch, Device: "D1", Kind: NodeRemoved, Class: 0x01, Cmd: 0x0D}
	b.Emit(e)
	got := b.Events()
	if len(got) != 1 || got[0].Kind != NodeRemoved {
		t.Fatalf("Events = %v", got)
	}
}

func TestBusSubscribeReceivesSubsequentEvents(t *testing.T) {
	var b Bus
	b.Emit(Event{Kind: AppDoS}) // before subscription: not delivered
	var seen []Kind
	b.Subscribe(func(e Event) { seen = append(seen, e.Kind) })
	b.Emit(Event{Kind: HostCrash})
	b.Emit(Event{Kind: ServiceHang})
	if len(seen) != 2 || seen[0] != HostCrash || seen[1] != ServiceHang {
		t.Fatalf("subscriber saw %v", seen)
	}
	if len(b.Events()) != 3 {
		t.Fatalf("bus recorded %d events, want 3", len(b.Events()))
	}
}

func TestBusSubscribeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(nil) did not panic")
		}
	}()
	(&Bus{}).Subscribe(nil)
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	var b Bus
	var first, second []Kind
	s1 := b.Subscribe(func(e Event) { first = append(first, e.Kind) })
	s2 := b.Subscribe(func(e Event) { second = append(second, e.Kind) })
	if b.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want 2", b.Subscribers())
	}
	b.Emit(Event{Kind: HostCrash})
	s1.Unsubscribe()
	b.Emit(Event{Kind: ServiceHang})
	if len(first) != 1 || first[0] != HostCrash {
		t.Errorf("unsubscribed callback saw %v", first)
	}
	if len(second) != 2 {
		t.Errorf("remaining subscriber saw %v, want both events", second)
	}
	if b.Subscribers() != 1 {
		t.Errorf("Subscribers = %d after unsubscribe, want 1", b.Subscribers())
	}
	s2.Unsubscribe()
	if b.Subscribers() != 0 {
		t.Errorf("Subscribers = %d, want 0", b.Subscribers())
	}
}

func TestUnsubscribeIdempotentAndNilSafe(t *testing.T) {
	var b Bus
	n := 0
	s := b.Subscribe(func(Event) { n++ })
	other := b.Subscribe(func(Event) {})
	s.Unsubscribe()
	s.Unsubscribe() // second call is a no-op, must not drop `other`
	var nilSub *Subscription
	nilSub.Unsubscribe()
	if b.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d, want 1 (double-unsubscribe removed a stranger)", b.Subscribers())
	}
	b.Emit(Event{Kind: AppDoS})
	if n != 0 {
		t.Fatal("unsubscribed callback still delivered")
	}
	_ = other
}

func TestSignatureDistinguishesTableIIIBugs(t *testing.T) {
	// Bugs 01-04 and 12 share CMDCL 0x01 / CMD 0x0D but differ by effect;
	// bugs 08 and 11 share kind and class but differ by command.
	events := []Event{
		{Kind: NodeTampered, Class: 0x01, Cmd: 0x0D},
		{Kind: RogueNodeAdded, Class: 0x01, Cmd: 0x0D},
		{Kind: NodeRemoved, Class: 0x01, Cmd: 0x0D},
		{Kind: DatabaseOverwritten, Class: 0x01, Cmd: 0x0D},
		{Kind: WakeupCleared, Class: 0x01, Cmd: 0x0D},
		{Kind: ServiceHang, Class: 0x59, Cmd: 0x03},
		{Kind: ServiceHang, Class: 0x59, Cmd: 0x05},
	}
	seen := make(map[string]bool)
	for _, e := range events {
		sig := e.Signature()
		if seen[sig] {
			t.Fatalf("duplicate signature %q", sig)
		}
		seen[sig] = true
	}
}

func TestUniqueSignaturesDedupsAndPreservesOrder(t *testing.T) {
	var b Bus
	b.Emit(Event{Kind: ServiceHang, Class: 0x5A, Cmd: 0x01})
	b.Emit(Event{Kind: ServiceHang, Class: 0x5A, Cmd: 0x01}) // duplicate
	b.Emit(Event{Kind: HostCrash, Class: 0x9F, Cmd: 0x01})
	sigs := b.UniqueSignatures()
	if len(sigs) != 2 {
		t.Fatalf("unique signatures = %v", sigs)
	}
	if !strings.Contains(sigs[0], "service-hang") || !strings.Contains(sigs[1], "host-crash") {
		t.Fatalf("order not preserved: %v", sigs)
	}
}

func TestResetClearsEventsKeepsSubscribers(t *testing.T) {
	var b Bus
	n := 0
	b.Subscribe(func(Event) { n++ })
	b.Emit(Event{Kind: AppDoS})
	b.Reset()
	if len(b.Events()) != 0 {
		t.Fatal("Reset left events")
	}
	b.Emit(Event{Kind: AppDoS})
	if n != 2 {
		t.Fatalf("subscriber called %d times, want 2", n)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		NodeTampered:        "node-tampered",
		RogueNodeAdded:      "rogue-node-added",
		NodeRemoved:         "node-removed",
		DatabaseOverwritten: "database-overwritten",
		AppDoS:              "app-dos",
		HostCrash:           "host-crash",
		HostDoS:             "host-dos",
		ServiceHang:         "service-hang",
		WakeupCleared:       "wakeup-cleared",
		MACParsingFault:     "mac-parsing-fault",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(77).String(), "77") {
		t.Error("unknown kind should embed value")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At:       vtime.SimEpoch,
		Device:   "D4",
		Kind:     ServiceHang,
		Class:    0x86,
		Cmd:      0x13,
		Duration: 4 * time.Second,
		Detail:   "version get flood",
	}
	s := e.String()
	for _, want := range []string{"D4", "service-hang", "0x86", "0x13", "4s", "version get flood"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestConfidenceStrings(t *testing.T) {
	if s := ConfidenceConfirmed.String(); s != "confirmed" {
		t.Errorf("confirmed = %q", s)
	}
	if s := ConfidenceSuspect.String(); s != "suspect" {
		t.Errorf("suspect = %q", s)
	}
	if s := Confidence(9).String(); s != "Confidence(9)" {
		t.Errorf("unknown = %q", s)
	}
}

func TestBusCoverageHookObservesEmits(t *testing.T) {
	var b Bus
	cov := coverage.NewCollector()
	b.SetCoverage(cov)
	cov.BeginInput()
	b.Emit(Event{Device: "D1", Kind: ServiceHang, Class: 0x86, Cmd: 0x13})
	if n := cov.EndInput(); n == 0 {
		t.Fatal("emitted event produced no coverage feature")
	}

	// The same event again is not novel; a different kind is.
	cov.BeginInput()
	b.Emit(Event{Device: "D1", Kind: ServiceHang, Class: 0x86, Cmd: 0x13})
	if n := cov.EndInput(); n != 0 {
		t.Fatalf("repeat event reported %d new features", n)
	}
	cov.BeginInput()
	b.Emit(Event{Device: "D1", Kind: NodeTampered, Class: 0x01, Cmd: 0x0D})
	if n := cov.EndInput(); n == 0 {
		t.Fatal("distinct event kind reported no new feature")
	}

	// Detaching stops observation without touching subscribers.
	b.SetCoverage(nil)
	before := cov.Inputs()
	cov.BeginInput()
	b.Emit(Event{Device: "D1", Kind: MACParsingFault})
	cov.EndInput()
	if cov.Inputs() != before+1 {
		t.Fatal("collector input accounting broken")
	}
	if len(b.Events()) != 4 {
		t.Fatalf("events = %d, want 4", len(b.Events()))
	}
}
