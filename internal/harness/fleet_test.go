package harness

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// trimRight strips each line's trailing column padding so the golden
// literal can live in source without invisible whitespace.
func trimRight(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

// fleetTestBudget keeps the parity tests fast while still exercising every
// campaign phase (fingerprint, discovery, quick + deep fuzzing passes).
const fleetTestBudget = 20 * time.Minute

// TestTable5GoldenPinned pins Table V's rendered output at a fixed short
// budget. Every component — clock, radio, spec database, both engines,
// and now the fleet scheduler — feeds this byte string, so scheduling
// regressions (shared state between parallel campaigns, result
// misordering) surface here first.
func TestTable5GoldenPinned(t *testing.T) {
	const golden = `Table V: CMDCL coverage and unique vulnerability discovery, VFuzz vs ZCover
ID  VFuzz CMDCL  VFuzz CMD  VFuzz #Vul  ZCover CMDCL  ZCover CMD  ZCover #Vul  Common
--  -----------  ---------  ----------  ------------  ----------  -----------  ------
D1  256          256        1           45            53          10           0
D2  256          256        2           45            53          10           0
D3  256          256        0           45            53          10           0
D4  256          256        2           45            53          10           0
D5  256          256        0           45            53          10           0
VFuzz covers the whole 256-value CMDCL range; ZCover prioritises the
45 known+unknown CMDCLs and the 53 validated commands.
`
	tbl, _, err := Table5(fleetTestBudget)
	if err != nil {
		t.Fatal(err)
	}
	if got := trimRight(tbl.String()); got != golden {
		t.Errorf("Table V drifted from the golden run:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestTable5FleetByteIdenticalAcrossWorkers asserts the ISSUE's core
// acceptance criterion: the sequential fallback and the parallel pool
// produce the same bytes for fixed seeds.
func TestTable5FleetByteIdenticalAcrossWorkers(t *testing.T) {
	seqTbl, seqRows, err := Table5Fleet(fleetTestBudget, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parTbl, parRows, err := Table5Fleet(fleetTestBudget, fleet.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seqTbl.String() != parTbl.String() {
		t.Errorf("Table V differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			seqTbl.String(), parTbl.String())
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("Table V rows differ between worker counts: %+v vs %+v", seqRows, parRows)
	}
}

func TestTable6FleetByteIdenticalAcrossWorkers(t *testing.T) {
	seqTbl, seqRows, err := Table6Fleet(30*time.Minute, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parTbl, parRows, err := Table6Fleet(30*time.Minute, fleet.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seqTbl.String() != parTbl.String() {
		t.Errorf("Table VI differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			seqTbl.String(), parTbl.String())
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("Table VI rows differ between worker counts")
	}
}

func TestFig12FleetByteIdenticalAcrossWorkers(t *testing.T) {
	seqCSVs, seqSeries, err := Fig12Fleet(30*time.Minute, 400*time.Second, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parCSVs, parSeries, err := Fig12Fleet(30*time.Minute, 400*time.Second, fleet.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCSVs) != len(parCSVs) {
		t.Fatalf("series count differs: %d vs %d", len(seqCSVs), len(parCSVs))
	}
	for i := range seqCSVs {
		if seqCSVs[i].String() != parCSVs[i].String() {
			t.Errorf("Fig 12 CSV %d differs between workers=1 and workers=8", i)
		}
	}
	if !reflect.DeepEqual(seqSeries, parSeries) {
		t.Errorf("Fig 12 series differ between worker counts")
	}
}

func TestRunTrialsFleetMatchesSequential(t *testing.T) {
	seq, err := RunTrialsFleet("D1", 3, fleetTestBudget, 300, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTrialsFleet("D1", 3, fleetTestBudget, 300, fleet.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("trial summary differs between worker counts: %+v vs %+v", seq, par)
	}
}

// TestCampaignsDetachBusObservers guards the unsubscribe fix: a finished
// campaign must leave no engine subscribed to the testbed's oracle bus,
// so sequential reuse (trials) and fleet retries start clean.
func TestCampaignsDetachBusObservers(t *testing.T) {
	tb, err := testbed.New("D1", 41)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunZCover(tb, fuzz.StrategyFull, time.Minute, 41); err != nil {
		t.Fatal(err)
	}
	if n := tb.Bus.Subscribers(); n != 0 {
		t.Errorf("%d observers leaked after a ZCover campaign", n)
	}
	if _, err := RunVFuzz(tb, time.Minute, 41); err != nil {
		t.Fatal(err)
	}
	if n := tb.Bus.Subscribers(); n != 0 {
		t.Errorf("%d observers leaked after a VFuzz campaign", n)
	}
}

// TestBetaStrategyKeepsEngineCommandCount guards the CommandsCovered fix:
// the β/γ strategies skip discovery, so the campaign must not overwrite
// the engine's count with the zero-value Discovery's.
func TestBetaStrategyKeepsEngineCommandCount(t *testing.T) {
	outs, err := runCampaigns("fleet-test", []fleet.Job{
		{Name: "beta", Device: "D1", Strategy: fuzz.StrategyKnownOnly, Seed: 41, Budget: time.Minute},
	}, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := outs[0].Campaign
	if len(c.Discovery.ConfirmedCommands) != 0 {
		t.Fatalf("β strategy ran discovery?")
	}
	// The engine's own value stands (zero today, but no longer clobbered
	// by the caller); the invariant under test is "untouched", keyed to
	// the engine result rather than the discovery result.
	if c.Fuzz.CommandsCovered != 0 {
		t.Errorf("CommandsCovered = %d for β, want the engine's own count", c.Fuzz.CommandsCovered)
	}
}
