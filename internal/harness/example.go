package harness

import "zcover/internal/protocol"

// protocolExample builds the canonical BASIC_SET example frame used by the
// Fig. 1 driver: home CB95A34A, node 0x0F to the controller, payload
// [0x20 0x01 0xFF] (BASIC SET 0xFF).
func protocolExample() *protocol.Frame {
	return protocol.NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01, 0xFF})
}
