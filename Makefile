# Tier-1 gate and convenience targets. `make verify` must pass before
# every commit; CI runs the same script.

.PHONY: verify verify-full test bench build

verify:
	./scripts/verify.sh

# Includes the 24h-budget campaign tests (slow; what CI runs nightly).
verify-full:
	./scripts/verify.sh -full

build:
	go build ./...

test:
	go test ./...

bench:
	go test ./internal/harness -run XXX -bench BenchmarkFleetParallelism -benchtime 3x
