// Package ids implements the lightweight intrusion detection system the
// paper proposes as attack remediation for legacy devices (§V-B, citing
// the authors' ZMAD model-based detector). It is a passive monitor: it
// trains a model of the network's normal traffic — membership, command
// vocabulary, per-source rates — and afterwards raises typed alerts for
// frames that deviate. Every attack ZCover injects violates at least one
// of its rules, so a smart home running this monitor would have seen the
// Fig. 2 intrusion that the controller itself processed silently.
package ids

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
	"zcover/internal/vtime"
)

// Rule identifies which detection model a frame violated.
type Rule int

// Detection rules. Enum starts at 1.
const (
	// RuleMalformedFrame flags frames the codec rejects (bad LEN or
	// checksum) — the shape of MAC-layer fuzzing.
	RuleMalformedFrame Rule = iota + 1
	// RuleUnknownSource flags traffic from a node ID never seen during
	// training.
	RuleUnknownSource
	// RuleClearTextProtocol flags the network-management classes 0x01 and
	// 0x02 appearing unencrypted — normal networks never carry them in
	// application traffic, and they are the vector of seven Table III bugs.
	RuleClearTextProtocol
	// RuleUnknownCommand flags (class, command) pairs outside the trained
	// vocabulary.
	RuleUnknownCommand
	// RuleRateAnomaly flags a source exceeding its trained frame rate by
	// a large factor (flooding).
	RuleRateAnomaly
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case RuleMalformedFrame:
		return "malformed-frame"
	case RuleUnknownSource:
		return "unknown-source"
	case RuleClearTextProtocol:
		return "cleartext-protocol-class"
	case RuleUnknownCommand:
		return "unknown-command"
	case RuleRateAnomaly:
		return "rate-anomaly"
	default:
		return "Rule(" + strconv.Itoa(int(r)) + ")"
	}
}

// Severity grades an alert.
type Severity int

// Severities. Enum starts at 1.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	default:
		return "Severity(" + strconv.Itoa(int(s)) + ")"
	}
}

// Alert is one detection.
type Alert struct {
	// At is the simulated detection instant.
	At time.Time
	// Rule names the violated model.
	Rule Rule
	// Severity grades the alert.
	Severity Severity
	// Src is the offending source node (zero for malformed frames).
	Src protocol.NodeID
	// Detail describes the violation.
	Detail string
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s/%s src=%s: %s",
		a.At.Format("15:04:05.000"), a.Severity, a.Rule, a.Src, a.Detail)
}

// rateWindow is the sliding window for per-source rate tracking.
const rateWindow = 10 * time.Second

// rateFactor is how many times the trained peak rate a source may reach
// before the rate model fires.
const rateFactor = 4

// Monitor is the IDS instance. Construct with New; call Train with normal
// traffic flowing, then read Alerts as the network runs.
type Monitor struct {
	clock *vtime.SimClock
	home  protocol.HomeID
	trx   *radio.Transceiver

	mu       sync.Mutex
	training bool
	// learned model
	knownSources map[protocol.NodeID]bool
	vocabulary   map[[2]byte]bool
	peakRate     int // frames per rateWindow per source, training peak
	// detection state
	recent map[protocol.NodeID][]time.Time
	alerts []Alert
	frames int
}

// New attaches a monitor to the medium, watching one home ID.
func New(m *radio.Medium, region radio.Region, home protocol.HomeID) *Monitor {
	mon := &Monitor{
		clock:        m.Clock(),
		home:         home,
		knownSources: make(map[protocol.NodeID]bool),
		vocabulary:   make(map[[2]byte]bool),
		recent:       make(map[protocol.NodeID][]time.Time),
		peakRate:     1,
	}
	mon.trx = m.Attach("ids", region)
	mon.trx.SetReceiver(mon.onCapture)
	return mon
}

// Train observes the air for the window (advancing the simulated clock)
// and builds the baseline model from whatever normal traffic flows.
func (m *Monitor) Train(window time.Duration) {
	m.mu.Lock()
	m.training = true
	m.mu.Unlock()
	m.clock.Advance(window)
	m.mu.Lock()
	m.training = false
	m.recent = make(map[protocol.NodeID][]time.Time)
	m.mu.Unlock()
}

// Alerts returns a copy of the raised alerts in order.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// AlertsByRule tallies alerts per rule.
func (m *Monitor) AlertsByRule() map[Rule]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Rule]int)
	for _, a := range m.alerts {
		out[a.Rule]++
	}
	return out
}

// FramesSeen reports total frames observed (training + detection).
func (m *Monitor) FramesSeen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frames
}

// KnownSources reports the trained membership model.
func (m *Monitor) KnownSources() []protocol.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]protocol.NodeID, 0, len(m.knownSources))
	for id := range m.knownSources {
		out = append(out, id)
	}
	return out
}

// Reset clears alerts but keeps the trained model.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alerts = nil
	m.recent = make(map[protocol.NodeID][]time.Time)
}

// onCapture is the monitor's receive path.
func (m *Monitor) onCapture(c radio.Capture) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.frames++

	home, src, _, ok := protocol.SniffNetworkInfo(c.Raw)
	if !ok || home != m.home {
		return
	}
	// Pool-backed decode: the frame (and its payload, which aliases the
	// capture buffer) is done with before this callback returns — learn and
	// detect copy what they keep into the model maps.
	f := protocol.GetFrame()
	defer protocol.PutFrame(f)
	if err := protocol.DecodeInto(f, c.Raw, protocol.ChecksumCS8); err != nil {
		if !m.training {
			m.raise(RuleMalformedFrame, SeverityMedium, src,
				fmt.Sprintf("undecodable frame (%d bytes): %v", len(c.Raw), err))
		}
		return
	}
	if f.IsAck() {
		return
	}

	if m.training {
		m.learn(f)
		return
	}
	m.detect(f)
}

// learn folds one normal frame into the baseline.
func (m *Monitor) learn(f *protocol.Frame) {
	m.knownSources[f.Src] = true
	if len(f.Payload) >= 2 {
		m.vocabulary[[2]byte{f.Payload[0], f.Payload[1]}] = true
	}
	now := m.clock.Now()
	m.recent[f.Src] = trim(append(m.recent[f.Src], now), now)
	if n := len(m.recent[f.Src]); n > m.peakRate {
		m.peakRate = n
	}
}

// detect evaluates one post-training frame against the model.
func (m *Monitor) detect(f *protocol.Frame) {
	now := m.clock.Now()

	if !m.knownSources[f.Src] {
		m.raise(RuleUnknownSource, SeverityHigh, f.Src,
			fmt.Sprintf("traffic from node %s never seen during training", f.Src))
	}

	if len(f.Payload) >= 1 {
		class := cmdclass.ClassID(f.Payload[0])
		switch {
		case class == cmdclass.ClassZWaveProtocol || class == cmdclass.ClassProprietaryMfg:
			// The hidden network-management classes must never appear as
			// clear-text application traffic (root cause of bugs 01-05,
			// 12, 14).
			m.raise(RuleClearTextProtocol, SeverityHigh, f.Src,
				fmt.Sprintf("clear-text network-management class %s", class))
		case class != 0x00 && !security.IsEncapsulation(f.Payload) && len(f.Payload) >= 2:
			key := [2]byte{f.Payload[0], f.Payload[1]}
			if !m.vocabulary[key] {
				m.raise(RuleUnknownCommand, SeverityMedium, f.Src,
					fmt.Sprintf("command 0x%02X/0x%02X outside trained vocabulary", key[0], key[1]))
			}
		}
	}

	m.recent[f.Src] = trim(append(m.recent[f.Src], now), now)
	if len(m.recent[f.Src]) > m.peakRate*rateFactor {
		m.raise(RuleRateAnomaly, SeverityMedium, f.Src,
			fmt.Sprintf("%d frames in %s (trained peak %d)", len(m.recent[f.Src]), rateWindow, m.peakRate))
		m.recent[f.Src] = nil // re-arm after alerting
	}
}

// raise appends an alert.
func (m *Monitor) raise(rule Rule, sev Severity, src protocol.NodeID, detail string) {
	m.alerts = append(m.alerts, Alert{
		At: m.clock.Now(), Rule: rule, Severity: sev, Src: src, Detail: detail,
	})
}

// trim drops timestamps older than the rate window.
func trim(ts []time.Time, now time.Time) []time.Time {
	cut := now.Add(-rateWindow)
	for len(ts) > 0 && ts[0].Before(cut) {
		ts = ts[1:]
	}
	return ts
}
