package controller

import (
	"strings"
	"testing"

	"zcover/internal/serialapi"
)

func TestSerialMemoryGetIDMatchesProfile(t *testing.T) {
	r := newRig(t, "D1")
	p := serialapi.NewPCController(r.ctrl)
	id, err := p.NetworkID()
	if err != nil {
		t.Fatal(err)
	}
	if id.Home != 0xE7DE3F3D || id.NodeID != 0x01 {
		t.Fatalf("network id = %+v", id)
	}
}

func TestSerialNodeTableReflectsInclusions(t *testing.T) {
	r := newRig(t, "D2")
	p := serialapi.NewPCController(r.ctrl)
	table, err := p.NodeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 3 {
		t.Fatalf("table = %v", table)
	}
	if table[1].TypeName() != "Entry Control (Door Lock)" {
		t.Errorf("node 2 renders as %q", table[1].TypeName())
	}
	if table[2].TypeName() != "Binary Switch" {
		t.Errorf("node 3 renders as %q", table[2].TypeName())
	}
}

// The Fig. 8 view: after the memory-tampering attack, the PC Controller
// program shows the door lock as a routing slave.
func TestSerialViewShowsMemoryTampering(t *testing.T) {
	r := newRig(t, "D4")
	p := serialapi.NewPCController(r.ctrl)

	before, err := p.RenderTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before, "Door Lock") {
		t.Fatalf("before:\n%s", before)
	}

	// Bug 01: rewrite the lock's stored type (Fig 8).
	r.inject(t, []byte{0x01, 0x0D, 0x02, 0x00, 0x00, 0x00, 0x04, 0x10, 0x01})

	after, err := p.RenderTable()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after, "Door Lock") {
		t.Fatalf("lock still rendered after tampering:\n%s", after)
	}
	if !strings.Contains(after, "Binary Switch") {
		t.Fatalf("tampered type not visible:\n%s", after)
	}
}

// The Fig. 9 view: rogue controllers #10 and #200 appear in the list.
func TestSerialViewShowsRogueControllers(t *testing.T) {
	r := newRig(t, "D1")
	p := serialapi.NewPCController(r.ctrl)
	for _, id := range []byte{10, 200} {
		r.inject(t, []byte{0x01, 0x0D, id, 0x80, 0x00, 0x00, 0x01, 0x02, 0x01})
	}
	view, err := p.RenderTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view, "10 ") || !strings.Contains(view, "200") {
		t.Fatalf("rogue nodes missing from view:\n%s", view)
	}
	if got := strings.Count(view, "Static Controller"); got != 3 { // self + 2 rogues
		t.Fatalf("view shows %d controllers, want 3:\n%s", got, view)
	}
}

func TestSerialSendDataTransmitsOnAir(t *testing.T) {
	r := newRig(t, "D1")
	p := serialapi.NewPCController(r.ctrl)
	if err := p.SendData(0x0F, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	// The attacker node (0x0F) received the frame off the air.
	if len(r.replies) != 1 || r.replies[0][0] != 0x20 {
		t.Fatalf("air traffic = %v", r.replies)
	}
}

func TestSerialVersionString(t *testing.T) {
	r := newRig(t, "D3")
	p := serialapi.NewPCController(r.ctrl)
	v, err := p.Version()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v, "Z-Wave 4.") {
		t.Fatalf("version = %q", v)
	}
}

func TestSerialUnknownNodeReportsEmptySlot(t *testing.T) {
	r := newRig(t, "D1")
	resp, ok := r.ctrl.SerialCall(serialapi.FuncGetNodeProtocolInfo, []byte{0x63})
	if !ok {
		t.Fatal("protocol info call failed")
	}
	for _, b := range resp {
		if b != 0 {
			t.Fatalf("empty slot = % X", resp)
		}
	}
}

func TestSerialUnsupportedFunction(t *testing.T) {
	r := newRig(t, "D1")
	if _, ok := r.ctrl.SerialCall(0xEE, nil); ok {
		t.Fatal("unknown function answered")
	}
}

func TestSerialRemoveFailedNode(t *testing.T) {
	r := newRig(t, "D1")
	client := serialapi.NewClient(r.ctrl)
	// Node 3 (the switch) is listening: the chip refuses to remove it.
	resp, err := client.Call(serialapi.FuncRemoveFailedNode, []byte{0x03})
	if err != nil || resp[0] != 0x00 {
		t.Fatalf("listening node removed: % X, %v", resp, err)
	}
	// Node 2 (the lock) is a non-listening sleeper: removable when failed.
	resp, err = client.Call(serialapi.FuncRemoveFailedNode, []byte{0x02})
	if err != nil || resp[0] != 0x01 {
		t.Fatalf("failed node not removed: % X, %v", resp, err)
	}
	if _, ok := r.ctrl.Table().Get(0x02); ok {
		t.Fatal("node still present")
	}
	// Unknown node.
	resp, err = client.Call(serialapi.FuncRemoveFailedNode, []byte{0x63})
	if err != nil || resp[0] != 0x00 {
		t.Fatalf("ghost removal: % X, %v", resp, err)
	}
}
