package device

import (
	"testing"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// ACK-timeout retransmission: with a retry policy installed, a frame the
// channel eats is retransmitted with capped exponential backoff until the
// MAC ack comes back; without one, the node transmits exactly once.

// dropFirstN returns an interceptor that swallows the first n non-ack
// data frames from the named sender and passes everything else.
func dropFirstN(from string, n *int) radio.InterceptFunc {
	return func(f, to string, raw []byte) []radio.Delivery {
		// Data frames carry a payload beyond the 9-byte header + checksum;
		// MAC acks do not. Dropping only data keeps the ack path clean.
		if f == from && *n > 0 && len(raw) > 11 {
			*n--
			return nil
		}
		return []radio.Delivery{{Raw: raw}}
	}
}

func TestSendRetransmitsUntilAcked(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	var delivered int
	peer.Handler = func(*protocol.Frame) { delivered++ }

	drops := 2
	m.SetInterceptor(dropFirstN("hub", &drops))
	hub.SetRetry(&RetryPolicy{MaxAttempts: 4, Backoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})

	if err := hub.Send(0x02, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d copies after retransmission, want 1", delivered)
	}
	if drops != 0 {
		t.Fatalf("interceptor still holds %d drops; retransmissions never happened", drops)
	}
}

func TestSendGivesUpAfterMaxAttempts(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	var delivered int
	peer.Handler = func(*protocol.Frame) { delivered++ }

	drops := 100 // more than the policy will ever attempt
	m.SetInterceptor(dropFirstN("hub", &drops))
	hub.SetRetry(&RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond})

	if err := hub.Send(0x02, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if delivered != 0 {
		t.Fatalf("delivered %d copies through a fully lossy channel", delivered)
	}
	if got := 100 - drops; got != 3 {
		t.Fatalf("transmitted %d attempts, want MaxAttempts=3", got)
	}
	if len(hub.pending) != 0 {
		t.Fatalf("pending wait leaked after giving up: %v", hub.pending)
	}
}

func TestSendWithoutRetryTransmitsOnce(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})

	drops := 100
	m.SetInterceptor(dropFirstN("hub", &drops))

	if err := hub.Send(0x02, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if got := 100 - drops; got != 1 {
		t.Fatalf("transmitted %d times without a retry policy, want 1", got)
	}
}

func TestRetryHealthyPathSchedulesNothing(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	var delivered int
	peer.Handler = func(*protocol.Frame) { delivered++ }

	hub.SetRetry(&RetryPolicy{MaxAttempts: 4, Backoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	// On a clean channel the ack arrives within Send itself (delivery is
	// synchronous), so no retry event may remain queued afterwards.
	if err := hub.Send(0x02, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(hub.pending) != 0 {
		t.Fatalf("acked send left a pending wait: %v", hub.pending)
	}
	clock.Advance(2 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d copies on a clean channel, want 1", delivered)
	}
}
