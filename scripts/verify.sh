#!/bin/sh
# verify.sh — the tier-1 gate: formatting, vet, build, and the race-enabled
# short test suite. Run before every commit; `make verify` wraps it.
#
#   ./scripts/verify.sh          # short suite (fast)
#   ./scripts/verify.sh -full    # include the 24h-budget campaign tests
#   ./scripts/verify.sh -fuzz    # also run the fuzz-smoke burst afterwards
#   ./scripts/verify.sh -bench   # also ratchet allocs/op vs BENCH_fleet.json
set -eu

cd "$(dirname "$0")/.."

short="-short"
fuzz=""
bench=""
for arg in "$@"; do
    case "$arg" in
    -full) short="" ;;
    -fuzz) fuzz="yes" ;;
    -bench) bench="yes" ;;
    *)
        echo "verify.sh: unknown flag $arg (want -full, -fuzz, and/or -bench)" >&2
        exit 2
        ;;
    esac
done

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not on PATH; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test -race -cover $short =="
cover_raw="$(mktemp)"
test_status="$(mktemp)"
trap 'rm -f "$cover_raw" "$test_status"' EXIT
# Plain-sh pitfall: `go test | tee` exits with tee's status, so `set -eu`
# would sail past test failures. Smuggle the real status through a file.
{ go test -race -cover $short ./... || echo "$?" > "$test_status"; } | tee "$cover_raw"
# CI uploads the raw coverage output as an artifact when asked — copied
# before the failure check so a red run still leaves the artifact behind.
if [ -n "${COVER_OUT:-}" ]; then
    cp "$cover_raw" "$COVER_OUT"
fi
if [ -s "$test_status" ]; then
    echo "verify: go test failed (exit $(cat "$test_status"))" >&2
    exit "$(cat "$test_status")"
fi

echo "== coverage baseline =="
baseline="scripts/coverage_baseline.txt"
if [ -f "$baseline" ]; then
    # Fail when any baselined package's statement coverage falls more than
    # two points below the committed figure, and when an internal/ package
    # reports coverage without a committed baseline — new subsystems must
    # run scripts/coverage_baseline.sh -add-missing before landing.
    awk -v drop=2.0 '
    NR == FNR { base[$1] = $2; next }
    $1 == "ok" {
        for (i = 1; i <= NF; i++) if ($i == "coverage:") {
            pct = $(i+1)
            sub(/%/, "", pct)
            if (pct ~ /^[0-9.]+$/) cov[$2] = pct
        }
    }
    END {
        bad = 0
        for (pkg in base) {
            if (!(pkg in cov)) {
                printf "coverage: baselined package %s missing from test run\n", pkg
                bad = 1
            } else if (cov[pkg] + drop < base[pkg]) {
                printf "coverage: %s dropped %.1f%% -> %.1f%% (allowed slack %.1f pts)\n",
                    pkg, base[pkg], cov[pkg], drop
                bad = 1
            }
        }
        for (pkg in cov) if (!(pkg in base)) {
            if (pkg ~ /\/internal\//) {
                printf "coverage: %s is not baselined; run scripts/coverage_baseline.sh -add-missing\n", pkg
                bad = 1
            } else {
                printf "coverage: warning: %s is not baselined; run scripts/coverage_baseline.sh -add-missing\n", pkg
            }
        }
        if (!bad) print "coverage: all baselined packages within " drop " pts"
        exit bad
    }' "$baseline" "$cover_raw"
else
    echo "no $baseline; run scripts/coverage_baseline.sh to create one"
fi

if [ -n "$fuzz" ]; then
    echo "== fuzz smoke =="
    ./scripts/fuzz_smoke.sh
fi

if [ -n "$bench" ]; then
    echo "== allocs/op ratchet (BenchmarkFleetParallelism/workers=1, BenchmarkCovFuzz) =="
    # Fail when a hot-path benchmark's allocs/op regresses more than 10%
    # over the committed BENCH_fleet.json figure. allocs/op is used because
    # it is iteration-exact — unlike ns/op it does not wobble with machine
    # load, so a 2-iteration run gates reliably.
    bench_raw="$(mktemp)"
    bench_status="$(mktemp)"
    { go test ./internal/harness -run '^$' -bench 'BenchmarkFleetParallelism/workers=1$|BenchmarkCovFuzz$' \
        -benchmem -benchtime 2x || echo "$?" > "$bench_status"; } | tee "$bench_raw"
    if [ -s "$bench_status" ]; then
        echo "verify: benchmark run failed (exit $(cat "$bench_status"))" >&2
        rm -f "$bench_raw" "$bench_status"
        exit 1
    fi
    rm -f "$bench_status"
    awk '
    NR == FNR {
        if ($0 ~ /"name":/) {
            name = $0
            sub(/.*"name": "/, "", name)
            sub(/".*/, "", name)
            for (i = 1; i <= NF; i++) if ($i == "\"allocs_per_op\":") {
                v = $(i+1)
                sub(/,/, "", v)
                base[name] = v
            }
        }
        next
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
        for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") now[name] = $i
    }
    END {
        bad = 0
        checked = 0
        for (name in now) {
            if (!(name in base)) continue
            checked++
            limit = base[name] * 1.10
            if (now[name] + 0 > limit) {
                printf "allocs ratchet: %s: %d allocs/op exceeds baseline %d by more than 10%%\n",
                    name, now[name], base[name]
                bad = 1
            } else {
                printf "allocs ratchet: %s: %d allocs/op within 10%% of baseline %d\n",
                    name, now[name], base[name]
            }
        }
        if (!checked) print "allocs ratchet: missing baseline or measurement; skipping"
        exit bad
    }' BENCH_fleet.json "$bench_raw"
    rm -f "$bench_raw"
fi

echo "verify: OK"
