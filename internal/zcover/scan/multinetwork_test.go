package scan

import (
	"testing"
	"time"

	"zcover/internal/controller"
	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/radio"
	"zcover/internal/vtime"
	"zcover/internal/zcover/dongle"
)

// Two smart homes share the same air (neighbouring houses on the same RF
// region): the scanner must separate them and fingerprint the requested
// target only. This mirrors the paper's deployment reality — the attacker
// at 10-70 m can easily hear more than one network.
func TestTwoNetworksOnOneAir(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)

	build := func(index string, lockID byte) (*controller.Controller, *device.BinarySwitch) {
		profile, _ := controller.ProfileByIndex(index)
		ctrl := controller.New(m, radio.RegionUS, profile, &oracle.Bus{})
		sw := device.NewBinarySwitch(device.Config{
			Medium: m, Region: radio.RegionUS,
			Home: profile.Home, ID: 0x03, Name: index + "-sw",
		}, 0x01)
		ctrl.IncludeNode(controller.NodeRecord{
			ID: 0x03, Basic: device.BasicTypeRoutingSlave,
			Generic: device.GenericTypeSwitchBinary, Capability: device.CapListening,
		})
		_ = lockID
		return ctrl, sw
	}
	ctrlA, swA := build("D1", 2)
	ctrlB, swB := build("D6", 2)

	d := dongle.New(m, radio.RegionUS)
	for i := 1; i <= 6; i++ {
		clock.Schedule(time.Duration(i)*10*time.Second, func() {
			_ = swA.ReportStatus()
			_ = swB.ReportStatus()
		})
	}

	nets := Passive(d, 70*time.Second)
	if len(nets) != 2 {
		t.Fatalf("found %d networks, want 2", len(nets))
	}

	// Fingerprint each target specifically; the listed-class counts
	// distinguish the modern D1 (17) from the... also modern D6 (17), so
	// check home IDs and NIF identity instead.
	for _, target := range []*controller.Controller{ctrlA, ctrlB} {
		// Regenerate traffic for the passive stage of FingerprintTarget.
		for i := 1; i <= 6; i++ {
			clock.Schedule(time.Duration(i)*10*time.Second, func() {
				_ = swA.ReportStatus()
				_ = swB.ReportStatus()
			})
		}
		fp, err := FingerprintTarget(d, 70*time.Second, target.Profile().Home)
		if err != nil {
			t.Fatalf("%s: %v", target.Profile().Index, err)
		}
		if fp.Home != target.Profile().Home {
			t.Fatalf("fingerprinted %s, want %s", fp.Home, target.Profile().Home)
		}
		if len(fp.Listed) != len(target.Profile().Listed) {
			t.Fatalf("%s: listed %d classes", target.Profile().Index, len(fp.Listed))
		}
	}
}
