package chaos

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// replay transmits n frames tx->rx through an injector and fingerprints
// what the receiver observed (bytes and arrival offsets).
func replay(t *testing.T, p Profile, seed int64, n int) []string {
	t.Helper()
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	tx := m.Attach("tx", radio.RegionEU)
	rx := m.Attach("rx", radio.RegionEU)
	epoch := clock.Now()
	var got []string
	rx.SetReceiver(func(c radio.Capture) {
		got = append(got, fmt.Sprintf("%s %x", c.At.Sub(epoch), c.Raw))
	})
	New(p, seed).Attach(m)
	for i := 0; i < n; i++ {
		if err := tx.Transmit([]byte{0xAB, byte(i), byte(i >> 8), 0x01}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntilIdle()
	}
	return got
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	p, err := ParseProfile("stress")
	if err != nil {
		t.Fatal(err)
	}
	a := replay(t, p, 42, 500)
	b := replay(t, p, 42, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same profile+seed produced different delivery sequences")
	}
	c := replay(t, p, 43, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical delivery sequences")
	}
}

// TestInjectorLinkIndependence: adding traffic on an unrelated link must
// not change an existing link's fault stream.
func TestInjectorLinkIndependence(t *testing.T) {
	p := builtins["lossy"]
	run := func(extra bool) []string {
		clock := vtime.NewSimClock()
		m := radio.NewMedium(clock)
		tx := m.Attach("tx", radio.RegionEU)
		rx := m.Attach("rx", radio.RegionEU)
		var other *radio.Transceiver
		if extra {
			other = m.Attach("other", radio.RegionEU)
			other.SetReceiver(func(radio.Capture) {})
		}
		epoch := clock.Now()
		var got []string
		rx.SetReceiver(func(c radio.Capture) {
			// Record only tx's frames: the extra node's own traffic also
			// reaches rx and is not part of the stream under test.
			if len(c.Raw) > 0 && c.Raw[0] == 1 {
				got = append(got, fmt.Sprintf("%s %x", c.At.Sub(epoch), c.Raw))
			}
		})
		New(p, 7).Attach(m)
		// Advance by a fixed step (rather than RunUntilIdle) so iteration
		// start times are identical with and without the extra traffic;
		// the step comfortably covers airtime + max jitter + duplicates.
		for i := 0; i < 300; i++ {
			if err := tx.Transmit([]byte{1, byte(i), 2}); err != nil {
				t.Fatal(err)
			}
			if extra && i%3 == 0 {
				if err := other.Transmit([]byte{9, byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			clock.Advance(50 * time.Millisecond)
		}
		return got
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("unrelated link traffic shifted the tx->rx fault stream")
	}
}

// TestGilbertElliottBurstiness: with a bursty profile, losses must cluster
// (observed consecutive-loss runs longer than independent loss at the same
// average rate would plausibly produce).
func TestGilbertElliottBurstiness(t *testing.T) {
	p := Profile{GoodLoss: 0, BadLoss: 1, GoodToBad: 0.02, BadToGood: 0.2}
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	tx := m.Attach("tx", radio.RegionEU)
	rx := m.Attach("rx", radio.RegionEU)
	received := make(map[int]bool)
	rx.SetReceiver(func(c radio.Capture) {
		received[int(c.Raw[1])|int(c.Raw[2])<<8] = true
	})
	New(p, 11).Attach(m)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tx.Transmit([]byte{0xCC, byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntilIdle()
	}
	lost, maxRun, run := 0, 0, 0
	for i := 0; i < n; i++ {
		if received[i] {
			run = 0
			continue
		}
		lost++
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	if lost == 0 || lost == n {
		t.Fatalf("degenerate loss count %d/%d", lost, n)
	}
	// Mean bad-state dwell is 1/0.2 = 5 frames; runs of >= 3 consecutive
	// losses are practically certain over 2000 frames, and practically
	// impossible at the same rate with independent losses only if the rate
	// were tiny — this asserts the two-state model is actually engaged.
	if maxRun < 3 {
		t.Errorf("max consecutive-loss run %d; burst channel should produce runs >= 3", maxRun)
	}
}

func TestPartitionWindow(t *testing.T) {
	p := Profile{Partitions: []Partition{{Node: "lock", From: time.Hour, For: 10 * time.Minute}}}
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	tx := m.Attach("tx", radio.RegionEU)
	lock := m.Attach("D1-lock", radio.RegionEU)
	var got int
	lock.SetReceiver(func(radio.Capture) { got++ })
	inj := New(p, 1)
	inj.Attach(m)

	send := func() {
		t.Helper()
		if err := tx.Transmit([]byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntilIdle()
	}
	send()
	if got != 1 {
		t.Fatalf("pre-partition frame not delivered (got=%d)", got)
	}
	clock.Advance(time.Hour + time.Minute) // inside the window
	send()
	if got != 1 {
		t.Fatalf("frame delivered during partition (got=%d)", got)
	}
	if !inj.ImpairedSince(clock.Now().Add(-time.Minute)) {
		t.Error("ImpairedSince false right after a partition drop")
	}
	clock.Advance(10 * time.Minute) // past the window
	send()
	if got != 2 {
		t.Fatalf("post-partition frame not delivered (got=%d)", got)
	}
	if st := inj.Stats(); st.Partitioned != 1 {
		t.Errorf("Partitioned = %d, want 1", st.Partitioned)
	}
}

func TestImpairedSinceBeforeAnyFault(t *testing.T) {
	inj := New(builtins["stress"], 5)
	if inj.ImpairedSince(time.Time{}) {
		t.Fatal("ImpairedSince true with no faults applied")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range Profiles() {
		if _, err := ParseProfile(name); err != nil {
			t.Errorf("builtin %q failed to parse: %v", name, err)
		}
	}
	p, err := ParseProfile("burst:badloss=0.7,jittermax=40ms,jitterp=0.2,partition=switch@30m/5m")
	if err != nil {
		t.Fatal(err)
	}
	if p.BadLoss != 0.7 || p.JitterMax != 40*time.Millisecond || p.Jitter != 0.2 {
		t.Errorf("overrides not applied: %+v", p)
	}
	if len(p.Partitions) != 1 || p.Partitions[0].Node != "switch" ||
		p.Partitions[0].From != 30*time.Minute || p.Partitions[0].For != 5*time.Minute {
		t.Errorf("partition override not applied: %+v", p.Partitions)
	}
	if p.GoodToBad != builtins["burst"].GoodToBad {
		t.Errorf("non-overridden field changed: %+v", p)
	}
	// The builtin must not have been mutated by the partition append.
	if len(builtins["burst"].Partitions) != 0 {
		t.Fatal("ParseProfile mutated a builtin profile")
	}
	for _, bad := range []string{
		"unknown", "burst:zzz=1", "burst:badloss=1.5", "burst:badloss",
		"burst:partition=lock", "burst:partition=lock@x/5m", "burst:partition=lock@1h/0s",
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestProfileEnabled(t *testing.T) {
	if (Profile{}).Enabled() {
		t.Error("zero profile reports Enabled")
	}
	if builtins["none"].Enabled() {
		t.Error("none profile reports Enabled")
	}
	for _, name := range []string{"burst", "noise", "jitter", "partition", "lossy", "stress"} {
		if !builtins[name].Enabled() {
			t.Errorf("builtin %q reports disabled", name)
		}
	}
}

// TestInjectorConcurrentHammer drives one injector from many goroutines
// under -race: concurrent transmissions on distinct links plus Stats and
// ImpairedSince readers.
func TestInjectorConcurrentHammer(t *testing.T) {
	clock := vtime.NewSimClock()
	m := radio.NewMedium(clock)
	rx := m.Attach("rx", radio.RegionEU)
	var rmu sync.Mutex
	var frames [][]byte
	rx.SetReceiver(func(c radio.Capture) {
		rmu.Lock()
		frames = append(frames, c.Raw)
		rmu.Unlock()
	})
	inj := New(builtins["stress"], 3)
	inj.Attach(m)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			trx := m.Attach(fmt.Sprintf("w%d", w), radio.RegionEU)
			for i := 0; i < 100; i++ {
				_ = trx.Transmit([]byte{byte(w), byte(i), 0x55, 0xAA})
				inj.Stats()
				inj.ImpairedSince(clock.Now())
			}
			trx.Detach()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			clock.RunUntilIdle()
			if st := inj.Stats(); st.Deliveries == 0 {
				t.Fatal("injector saw no deliveries")
			}
			rmu.Lock()
			defer rmu.Unlock()
			for _, f := range frames {
				if len(f) != 4 {
					t.Fatalf("frame length changed in flight: %x", f)
				}
			}
			return
		default:
			clock.Advance(time.Millisecond)
		}
	}
}

// TestInterceptBytesIndependentOfBuffer: a corrupting injector must copy
// before flipping, never scribbling on the caller's buffer.
func TestInterceptBytesIndependentOfBuffer(t *testing.T) {
	inj := New(Profile{Corrupt: 1}, 9)
	orig := []byte{1, 2, 3, 4}
	in := append([]byte(nil), orig...)
	out := inj.Intercept("a", "b", in)
	if len(out) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(out))
	}
	if !bytes.Equal(in, orig) {
		t.Fatal("injector mutated the input buffer")
	}
	if bytes.Equal(out[0].Raw, orig) {
		t.Fatal("corrupt=1 delivered an unmodified frame")
	}
}
