// Command experiments regenerates every table and figure of the paper's
// evaluation section against the simulated testbed.
//
// Usage:
//
//	experiments                 # everything, paper budgets
//	experiments -run table5     # one experiment
//	experiments -fuzz 2h        # shrink the 24 h campaigns (faster)
//	experiments -workers 8      # parallel campaigns (0 = GOMAXPROCS)
//	experiments -progress       # live fleet ticker on stderr
//	experiments -metrics-out metrics.json -trace-out spans.jsonl
//	experiments -flight-recorder 16 -obs-addr localhost:6060
//	experiments -run scaling -scaling-out BENCH_scaling.json
//
// Campaign experiments (table3/4/5/6, fig12, trials, remediation) are
// scheduled across the internal/fleet worker pool: each campaign runs on
// its own simulated testbed, so results are byte-identical for any
// -workers value, including the sequential -workers=1 fallback.
//
// Figure data series are printed as CSV after the corresponding summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"zcover"
	"zcover/internal/fleet"
	"zcover/internal/harness"
	"zcover/internal/obs"
	"zcover/internal/report"
	"zcover/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// ticker renders fleet progress as a single self-overwriting stderr line.
type ticker struct {
	mu   sync.Mutex
	last time.Time
	live bool // a progress line is on screen
}

// update is the fleet.Config OnProgress callback.
func (t *ticker) update(p fleet.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Throttle redraws; always render terminal states so the final counts
	// are never stale.
	if !p.Finished() && time.Since(t.last) < 100*time.Millisecond {
		return
	}
	t.last = time.Now()
	fmt.Fprintf(os.Stderr, "\r\033[Kfleet: %s", p)
	t.live = true
	if p.Finished() {
		fmt.Fprintln(os.Stderr)
		t.live = false
	}
}

// clear ends a dangling progress line before normal output resumes.
func (t *ticker) clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live {
		fmt.Fprintln(os.Stderr)
		t.live = false
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "experiment to run: all, fig1, fig5, figs8-11, table2, table3, table4, table5, table6, covfuzz, fig12, trials, remediation, chaos, scaling")
	fuzzBudget := fs.Duration("fuzz", 24*time.Hour, "fuzzing budget for the campaign experiments (paper: 24h)")
	ablation := fs.Duration("ablation", time.Hour, "budget for the ablation study (paper: 1h)")
	window := fs.Duration("window", 800*time.Second, "figure 12 plot window (paper: ~800s)")
	outDir := fs.String("out", "", "also write figure CSV series into this directory")
	workers := fs.Int("workers", 0, "parallel campaign workers; 1 = sequential, 0 = GOMAXPROCS")
	attempts := fs.Int("attempts", 0, "attempts per campaign before it is reported failed (0 = fleet default)")
	progress := fs.Bool("progress", false, "render a live fleet progress ticker on stderr")
	metricsOut := fs.String("metrics-out", "", "write final metrics to this file (.json = JSON document, else Prometheus text)")
	traceOut := fs.String("trace-out", "", "write fleet job spans to this file as JSON lines")
	flightDepth := fs.Int("flight-recorder", 0, "attach a packet flight recorder of this depth to every campaign testbed (0 = off)")
	chaosProfiles := fs.String("chaos-profiles", "", "comma-separated impairment profiles for -run chaos (empty = burst,noise,jitter)")
	chaosSeed := fs.Int64("chaos-seed", 1, "deterministic seed for the chaos campaign's fault injectors")
	obsAddr := fs.String("obs-addr", "", "serve the observability endpoints (/debug/pprof, /metrics, /healthz, /timeline) on this address, e.g. localhost:6060")
	pprofAddr := fs.String("pprof", "", "deprecated alias for -obs-addr")
	profileDir := fs.String("profile-dir", "", "enable mutex/block contention profiling and write pprof-format snapshots into this directory at run end")
	scalingOut := fs.String("scaling-out", "", "scaling: also write the report to this file as JSON (BENCH_scaling.json)")
	scalingWorkers := fs.String("scaling-workers", "1,2,4,8", "scaling: comma-separated worker counts to sweep")
	scalingBaseline := fs.String("scaling-baseline", "", "scaling: compare against this committed report and fail if parallel efficiency at the top worker count regressed >10%")
	gitSHA := fs.String("git-sha", "", "stamp bench reports with this commit (scripts pass it; empty omits)")
	ckptDir := fs.String("checkpoint-dir", "", "journal completed campaign jobs into this directory (crash-safe; resume with -resume)")
	resume := fs.Bool("resume", false, "continue existing journals in -checkpoint-dir instead of refusing to overwrite them")
	shardSpec := fs.String("shard", "", "run only shard i/n of each campaign's job list (e.g. 2/3); requires -checkpoint-dir")
	merge := fs.Bool("merge", false, "render tables purely from the journals in -checkpoint-dir; nothing executes")
	buglogOut := fs.String("buglog-out", "", "write every completed campaign's findings to this file as bug-log JSON lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shard, err := fleet.ParseShard(*shardSpec)
	if err != nil {
		return err
	}
	if (*resume || *merge || shard.Enabled()) && *ckptDir == "" {
		return fmt.Errorf("-resume, -shard, and -merge need -checkpoint-dir")
	}
	if *merge && shard.Enabled() {
		return fmt.Errorf("-merge renders every shard's journal; drop -shard")
	}
	// Fleet counters publish into the process registry; the drivers run one
	// fleet at a time, so per-fleet Progress deltas stay exact while the
	// registry accumulates process totals for -metrics-out. The worker
	// timeline feeds the /timeline endpoint live.
	timeline := obs.NewTimeline()
	fleetCfg := fleet.Config{Workers: *workers, MaxAttempts: *attempts,
		Telemetry: telemetry.Default(), Timeline: timeline}
	if addr := firstNonEmpty(*obsAddr, *pprofAddr); addr != "" {
		// Binds synchronously: a bad address fails here, before any
		// campaign work, instead of being printed and swallowed mid-run.
		srv, err := obs.NewServer(addr, telemetry.Default(), timeline)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: obs server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "experiments: observability on http://%s\n", srv.Addr())
	}
	harness.SetFleetRecorderDepth(*flightDepth)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		fleetCfg.Checkpoint = &fleet.CheckpointSpec{Dir: *ckptDir, Resume: *resume, Shard: shard, Merge: *merge}
	}
	if *buglogOut != "" {
		bf, err := os.Create(*buglogOut)
		if err != nil {
			return err
		}
		defer bf.Close()
		harness.SetBugLog(bf)
		defer harness.SetBugLog(nil)
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		fleetCfg.Tracer = telemetry.NewTracer(tf, nil)
	}
	if *metricsOut != "" {
		defer func() {
			if err := telemetry.Default().WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *profileDir != "" {
		restore := obs.StartProfiling(obs.ProfileConfig{})
		defer restore()
		// Registered after the -metrics-out defer so the runtime sample
		// (obs_* gauges) lands in the exported metrics file too.
		defer func() {
			obs.SampleRuntimeMetrics(telemetry.Default())
			if err := obs.SnapshotProfiles(*profileDir); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: profile snapshots:", err)
			}
		}()
	}
	tick := &ticker{}
	if *progress {
		fleetCfg.OnProgress = tick.update
	}
	writeCSV := func(name, content string) error {
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644)
	}

	want := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	// render prints a campaign experiment's output — unless this invocation
	// ran as a shard, in which case the journal is complete but the table
	// cannot exist yet; the ShardDone note replaces it and the run goes on.
	render := func(err error, print func() error) error {
		var sd *harness.ShardDone
		if errors.As(err, &sd) {
			fmt.Println(sd.Error())
			return nil
		}
		if err != nil {
			return err
		}
		return print()
	}

	if want("fig1") {
		ran = true
		fmt.Println(zcover.Fig1().String())
	}
	if want("fig5") {
		ran = true
		tbl, csv, err := zcover.Fig5()
		if err != nil {
			return err
		}
		fmt.Println(tbl.String())
		fmt.Println("fig5.csv:")
		fmt.Println(csv.String())
		if err := writeCSV("fig5.csv", csv.String()); err != nil {
			return err
		}
	}
	if want("table2") {
		ran = true
		fmt.Println(zcover.Table2().String())
	}
	if want("table3") {
		ran = true
		tbl, _, err := harness.Table3Fleet(*fuzzBudget, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table4") {
		ran = true
		tbl, _, err := harness.Table4Fleet(fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table5") {
		ran = true
		tbl, _, err := harness.Table5Fleet(*fuzzBudget, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("covfuzz") {
		ran = true
		tbl, _, err := harness.CovFuzzTable(*fuzzBudget, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table6") {
		ran = true
		tbl, _, err := harness.Table6Fleet(*ablation, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("figs8-11") {
		ran = true
		views, err := zcover.Figs8to11()
		if err != nil {
			return err
		}
		for _, v := range views {
			fmt.Println(v.String())
		}
	}
	if want("remediation") {
		ran = true
		tbl, _, err := harness.RemediationFleet(nil, *fuzzBudget, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("trials") {
		ran = true
		// "We conducted five 24-hour fuzzing trials for each controller."
		for _, idx := range []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7"} {
			sum, err := harness.RunTrialsFleet(idx, 5, *fuzzBudget, 300, fleetCfg)
			tick.clear()
			if err := render(err, func() error {
				fmt.Printf("%s: per-trial %v, union %d, stable %v\n",
					sum.Device, sum.PerTrial, sum.Union, sum.Stable)
				return nil
			}); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	if want("fig12") {
		ran = true
		csvs, series, err := harness.Fig12Fleet(*fuzzBudget, *window, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			for i, s := range series {
				fmt.Printf("Figure 12(%c): %s — %d unique vulnerabilities, first within %s\n",
					'a'+i, s.Index, len(s.Discoveries), s.Discoveries[0].Elapsed.Round(time.Second))
				chart := report.Chart{
					Title:  fmt.Sprintf("packets over time, %s (first %s)", s.Index, *window),
					XLabel: "time", YLabel: "test packets",
				}
				for _, sample := range s.Samples {
					chart.Points = append(chart.Points, report.Point{X: sample.Elapsed, Y: sample.Packets})
				}
				for _, f := range s.Discoveries {
					if f.Elapsed <= *window {
						chart.Points = append(chart.Points, report.Point{X: f.Elapsed, Y: f.Packets, Mark: true})
					}
				}
				fmt.Println(chart.String())
				name := fmt.Sprintf("fig12_%s.csv", strings.ToLower(s.Index))
				fmt.Printf("%s:\n%s\n", name, csvs[i].String())
				if err := writeCSV(name, csvs[i].String()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	// The chaos robustness sweep runs only on request: it is not a paper
	// table but the detection-robustness rerun of Table V under impairment.
	if *which == "chaos" {
		ran = true
		var profiles []string
		if *chaosProfiles != "" {
			profiles = strings.Split(*chaosProfiles, ",")
		}
		tbl, _, err := harness.ChaosTable5(*fuzzBudget, profiles, *chaosSeed, fleetCfg)
		tick.clear()
		if err := render(err, func() error {
			fmt.Println(tbl.String())
			return nil
		}); err != nil {
			return err
		}
	}
	// The scaling sweep also runs only on request: it is a bench, not a
	// paper table. It measures the fleet across worker counts, prints the
	// ranked bottleneck report, and optionally gates against a committed
	// baseline (the nightly CI leg).
	if *which == "scaling" {
		ran = true
		var ws []int
		for _, s := range strings.Split(*scalingWorkers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -scaling-workers entry %q", s)
			}
			ws = append(ws, n)
		}
		// Load the baseline before sweeping: a missing file fails fast, and
		// gating against the -scaling-out file being refreshed compares
		// old-versus-new instead of new-vs-new.
		var base *obs.ScalingReport
		if *scalingBaseline != "" {
			if base, err = obs.LoadScalingReport(*scalingBaseline); err != nil {
				return err
			}
		}
		rep, err := harness.ScalingSweep(harness.ScalingConfig{
			Workers: ws, Budget: *fuzzBudget, GitSHA: *gitSHA, Contention: true,
		})
		tick.clear()
		if err != nil {
			return err
		}
		fmt.Println(rep.Table())
		if *scalingOut != "" {
			if err := rep.WriteFile(*scalingOut); err != nil {
				return err
			}
		}
		if base != nil {
			if err := obs.CheckRegression(base, rep, 0.10); err != nil {
				return err
			}
			fmt.Printf("scaling gate: efficiency within 10%% of baseline %s\n", *scalingBaseline)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}
