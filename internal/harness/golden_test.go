package harness

import (
	"testing"
	"time"

	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// TestGoldenD1DiscoverySequence pins the exact discovery order of the
// reference campaign (D1, one hour, the Table VI seed). Every component —
// clock, radio, spec database, mutator schedule, engine pacing,
// vulnerability models — feeds this sequence, so any accidental behaviour
// drift anywhere in the stack shows up here first. Deliberate changes to
// the schedule should update this table consciously.
func TestGoldenD1DiscoverySequence(t *testing.T) {
	tb, err := testbed.New("D1", deviceSeed("D1"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunZCover(tb, fuzz.StrategyFull, time.Hour, deviceSeed("D1"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		signature string
		packets   int
		elapsed   time.Duration // rounded to seconds
	}{
		{"service-hang/0x01/0x04", 45, 0*time.Minute + 22*time.Second},
		{"node-removed/0x01/0x0D", 90, 4*time.Minute + 50*time.Second},
		{"database-overwritten/0x01/0x0D", 93, 4*time.Minute + 51*time.Second},
		{"wakeup-cleared/0x01/0x0D", 159, 5*time.Minute + 24*time.Second},
		{"host-crash/0x9F/0x01", 338, 6*time.Minute + 54*time.Second},
		{"service-hang/0x7A/0x03", 616, 9*time.Minute + 13*time.Second},
		{"service-hang/0x7A/0x01", 624, 10*time.Minute + 20*time.Second},
		{"service-hang/0x86/0x13", 760, 12*time.Minute + 36*time.Second},
		{"service-hang/0x59/0x03", 854, 13*time.Minute + 28*time.Second},
		{"service-hang/0x59/0x05", 859, 14*time.Minute + 38*time.Second},
		{"service-hang/0x5A/0x01", 1614, 21*time.Minute + 59*time.Second},
		{"rogue-node-added/0x01/0x0D", 1703, 23*time.Minute + 51*time.Second},
		{"node-tampered/0x01/0x0D", 1709, 23*time.Minute + 54*time.Second},
		{"host-dos/0x73/0x04", 3823, 41*time.Minute + 31*time.Second},
	}
	if len(c.Fuzz.Findings) != len(want) {
		var got []string
		for _, f := range c.Fuzz.Findings {
			got = append(got, f.Signature)
		}
		t.Fatalf("found %d bugs, want %d: %v", len(c.Fuzz.Findings), len(want), got)
	}
	for i, w := range want {
		f := c.Fuzz.Findings[i]
		if f.Signature != w.signature {
			t.Errorf("finding %d = %s, want %s", i, f.Signature, w.signature)
			continue
		}
		if f.Packets != w.packets {
			t.Errorf("%s at packet %d, want %d", w.signature, f.Packets, w.packets)
		}
		if got := f.Elapsed.Round(time.Second); got != w.elapsed {
			t.Errorf("%s at %s, want %s", w.signature, got, w.elapsed)
		}
	}
}
