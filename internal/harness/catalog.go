package harness

import (
	"time"

	"zcover/internal/controller"
	"zcover/internal/oracle"
)

// PaperBug is one row of the paper's Table III: the ground-truth catalogue
// the experiment drivers reconcile campaign findings against.
type PaperBug struct {
	// ID is the paper's Bug ID (1–15).
	ID controller.BugID
	// Signature is the oracle signature the bug manifests as.
	Signature string
	// Affected is the paper's affected-device set.
	Affected string
	// CMDCL and CMD identify the trigger vector.
	CMDCL, CMD byte
	// Description matches the paper's wording.
	Description string
	// Duration is the outage length (0 = "Infinite").
	Duration time.Duration
	// RootCause is "Specification" or "Implementation".
	RootCause string
	// Confirmed is the CVE ID, or "confirmed" for acknowledged bugs.
	Confirmed string
	// PoCPayload is the canonical single-packet proof-of-concept
	// application payload that reproduces the bug on a fresh device.
	PoCPayload []byte
	// PoCDevice is a testbed device the PoC manifests on.
	PoCDevice string
}

// sig builds an oracle signature from its parts.
func sig(kind oracle.Kind, class, cmd byte) string {
	return oracle.Event{Kind: kind, Class: class, Cmd: cmd}.Signature()
}

// PaperBugs returns the fifteen Table III rows in paper order.
func PaperBugs() []PaperBug {
	return []PaperBug{
		{controller.Bug01MemoryCorruption, sig(oracle.NodeTampered, 0x01, 0x0D), "D1 - D7",
			0x01, 0x0D, "Memory corruption in existing device properties.", 0, "Specification", "CVE-2024-50929",
			[]byte{0x01, 0x0D, 0x02, 0x00, 0x00, 0x00, 0x04, 0x10, 0x01}, "D1"},
		{controller.Bug02RogueInsertion, sig(oracle.RogueNodeAdded, 0x01, 0x0D), "D1 - D7",
			0x01, 0x0D, "Fake device insertion into controller's memory.", 0, "Specification", "CVE-2024-50920",
			[]byte{0x01, 0x0D, 0x0A, 0x80, 0x00, 0x00, 0x01, 0x02, 0x01}, "D1"},
		{controller.Bug03NodeRemoval, sig(oracle.NodeRemoved, 0x01, 0x0D), "D1 - D7",
			0x01, 0x0D, "Remove valid device in the controller's memory.", 0, "Specification", "CVE-2024-50931",
			[]byte{0x01, 0x0D, 0x02}, "D1"},
		{controller.Bug04DatabaseOverwrite, sig(oracle.DatabaseOverwritten, 0x01, 0x0D), "D1 - D7",
			0x01, 0x0D, "Overwriting the controller's device database.", 0, "Specification", "CVE-2024-50930",
			[]byte{0x01, 0x0D, 0xFF}, "D1"},
		{controller.Bug05AppDoS, sig(oracle.AppDoS, 0x01, 0x02), "D6 and D7",
			0x01, 0x02, "DoS on smartphone app.", 0, "Specification", "CVE-2024-50921",
			[]byte{0x01, 0x02, 0x01, 0xAA}, "D6"},
		{controller.Bug06HostCrash, sig(oracle.HostCrash, 0x9F, 0x01), "D1 - D5",
			0x9F, 0x01, "Z-Wave PC controller program crash.", 0, "Implementation", "CVE-2023-6640",
			[]byte{0x9F, 0x01, 0xFF}, "D1"},
		{controller.Bug07ResetLocallyHang, sig(oracle.ServiceHang, 0x5A, 0x01), "D1 - D7",
			0x5A, 0x01, "Service interruption during the attack.", 68 * time.Second, "Specification", "CVE-2023-6533",
			[]byte{0x5A, 0x01, 0x00}, "D1"},
		{controller.Bug08GroupInfoHang, sig(oracle.ServiceHang, 0x59, 0x03), "D1 - D7",
			0x59, 0x03, "Service interruption during the attack.", 67 * time.Second, "Specification", "CVE-2024-50924",
			[]byte{0x59, 0x03, 0x07, 0x01}, "D1"},
		{controller.Bug09FirmwareMDHang, sig(oracle.ServiceHang, 0x7A, 0x01), "D1 - D7",
			0x7A, 0x01, "Service interruption during the attack.", 63 * time.Second, "Specification", "CVE-2023-6642",
			[]byte{0x7A, 0x01, 0x00}, "D1"},
		{controller.Bug10VersionGetHang, sig(oracle.ServiceHang, 0x86, 0x13), "D1 - D7",
			0x86, 0x13, "Service interruption during the attack.", 4 * time.Second, "Specification", "CVE-2023-6641",
			[]byte{0x86, 0x13, 0xE0}, "D1"},
		{controller.Bug11CommandListHang, sig(oracle.ServiceHang, 0x59, 0x05), "D1 - D7",
			0x59, 0x05, "Service interruption during the attack.", 62 * time.Second, "Specification", "CVE-2023-6643",
			[]byte{0x59, 0x05, 0x07, 0x01}, "D1"},
		{controller.Bug12WakeupRemoval, sig(oracle.WakeupCleared, 0x01, 0x0D), "D1 - D7",
			0x01, 0x0D, "Remove the device's wakeup interval value.", 0, "Specification", "CVE-2024-50928",
			[]byte{0x01, 0x0D, 0x02, 0x00}, "D1"},
		{controller.Bug13HostDoS, sig(oracle.HostDoS, 0x73, 0x04), "D1 - D5",
			0x73, 0x04, "DoS on the Z-Wave PC controller program.", 0, "Implementation", "confirmed",
			[]byte{0x73, 0x04, 0x02, 0x00, 0xFF, 0x00}, "D1"},
		{controller.Bug14BusyScanHang, sig(oracle.ServiceHang, 0x01, 0x04), "D1 - D7",
			0x01, 0x04, "Z-Wave controller service disruption.", 4 * time.Minute, "Specification", "confirmed",
			[]byte{0x01, 0x04, 0x1D}, "D1"},
		{controller.Bug15FirmwareReqHang, sig(oracle.ServiceHang, 0x7A, 0x03), "D1 - D7",
			0x7A, 0x03, "Service interruption during the attack.", 59 * time.Second, "Specification", "confirmed",
			[]byte{0x7A, 0x03, 0x00}, "D1"},
	}
}

// BugBySignature resolves an oracle signature to its Table III row.
func BugBySignature(s string) (PaperBug, bool) {
	for _, b := range PaperBugs() {
		if b.Signature == s {
			return b, true
		}
	}
	return PaperBug{}, false
}
