package protocol

import (
	"bytes"
	"testing"
)

// Native fuzz targets. Run as unit tests over the seed corpus by default;
// `go test -fuzz=FuzzDecode ./internal/protocol` explores further.

func FuzzDecode(f *testing.F) {
	f.Add(NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01, 0xFF}).MustEncode())
	f.Add([]byte{})
	f.Add(make([]byte, MaxFrameSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, mode := range []ChecksumMode{ChecksumCS8, ChecksumCRC16} {
			frame, err := Decode(raw, mode)
			if err != nil {
				continue
			}
			// The decoder tolerates unknown frame-control values (it
			// normalises them to singlecast, as lenient receivers do), so
			// re-encoding may not reproduce raw byte-for-byte. The codec
			// contract is: re-encoding is a *normal form* — decoding and
			// re-encoding it is a fixed point — and the semantic fields
			// survive the normalisation.
			out, err := frame.Encode()
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
			again, err := Decode(out, mode)
			if err != nil {
				t.Fatalf("normal form does not decode: %v", err)
			}
			out2, err := again.Encode()
			if err != nil {
				t.Fatalf("normal form does not re-encode: %v", err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatalf("normalisation not idempotent: % X vs % X", out, out2)
			}
			if again.Home != frame.Home || again.Src != frame.Src ||
				again.Dst != frame.Dst || !bytes.Equal(again.Payload, frame.Payload) {
				t.Fatal("semantic fields lost in normalisation")
			}
		}
	})
}

// FuzzFrameDecode is the checksum-mode-aware frame codec target: the fuzzer
// picks the raw bytes and the checksum mode together, so coverage reaches
// both the 8-bit XOR and CRC-16 validation paths within one corpus. The
// invariants are those of FuzzDecode: re-encoding is a normal form and the
// semantic fields survive it.
func FuzzFrameDecode(f *testing.F) {
	frame := NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01, 0xFF})
	f.Add(frame.MustEncode(), false)
	crc := *frame
	crc.Checksum = ChecksumCRC16
	f.Add(crc.MustEncode(), true)
	f.Add([]byte{}, true)
	f.Add(make([]byte, MaxFrameSize), false)
	f.Fuzz(func(t *testing.T, raw []byte, crc16 bool) {
		mode := ChecksumCS8
		if crc16 {
			mode = ChecksumCRC16
		}
		frame, err := Decode(raw, mode)
		if err != nil {
			return
		}
		out, err := frame.Encode()
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		again, err := Decode(out, mode)
		if err != nil {
			t.Fatalf("normal form does not decode: %v", err)
		}
		out2, err := again.Encode()
		if err != nil {
			t.Fatalf("normal form does not re-encode: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("normalisation not idempotent: % X vs % X", out, out2)
		}
		if again.Home != frame.Home || again.Src != frame.Src ||
			again.Dst != frame.Dst || !bytes.Equal(again.Payload, frame.Payload) {
			t.Fatal("semantic fields lost in normalisation")
		}
	})
}

func FuzzParseRoutedPayload(f *testing.F) {
	seed, _ := EncodeRoutedPayload(RouteHeader{Repeaters: []NodeID{3}}, []byte{0x20, 0x01})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, payload []byte) {
		rh, apl, err := ParseRoutedPayload(payload)
		if err != nil {
			return
		}
		out, err := EncodeRoutedPayload(rh, apl)
		if err != nil {
			t.Fatalf("parsed route does not re-encode: %v", err)
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("route round trip mismatch")
		}
	})
}

func FuzzParseMulticastPayload(f *testing.F) {
	seed, _ := EncodeMulticastPayload([]NodeID{1, 9}, []byte{0x25, 0x01, 0xFF})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, payload []byte) {
		ids, apl, err := ParseMulticastPayload(payload)
		if err != nil {
			return
		}
		if len(ids) == 0 {
			return // empty mask parses but cannot re-encode
		}
		out, err := EncodeMulticastPayload(ids, apl)
		if err != nil {
			t.Fatalf("parsed multicast does not re-encode: %v", err)
		}
		// The re-encoded mask may be shorter (trailing zero bytes trimmed);
		// parse it again and compare the semantic content.
		ids2, apl2, err := ParseMulticastPayload(out)
		if err != nil {
			t.Fatalf("re-encoded multicast does not parse: %v", err)
		}
		if len(ids2) != len(ids) || !bytes.Equal(apl, apl2) {
			t.Fatal("multicast semantic round trip mismatch")
		}
	})
}
