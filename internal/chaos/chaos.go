// Package chaos is the deterministic fault-injection layer: a seeded,
// sim-clock-driven injector that composes onto radio.Medium as a frame
// interceptor and impairs the air the way the paper's physical testbed
// was impaired by real RF — burst loss (a Gilbert–Elliott two-state
// channel), single-bit corruption (exercising the CS-8/CRC-16 rejection
// paths), frame duplication, bounded reordering via latency jitter, and
// scheduled node partitions ("partition D8 from t=2h for 10m").
//
// Every fault stream is seeded per directed link (sender, receiver), so
// outcomes are byte-reproducible for a fixed seed regardless of worker
// count or of which unrelated transceivers share the medium, preserving
// the repository's tier-1 determinism gate.
//
// # Concurrency and pooling
//
// An Injector is safe for concurrent use (one mutex guards the per-link
// RNG streams and fault counters), but like the medium it attaches to it
// is normally driven by the single goroutine running one campaign's
// simulation; parallel fleet campaigns each build their own injector.
// The interceptor hook receives a private copy of each frame (per the
// radio package's ownership contract) and may mutate it in place — the
// corruption fault does exactly that — without ever touching pooled or
// transmitter-owned buffers. Stats returns a snapshot by value.
package chaos

import (
	"strings"
	"sync"
	"time"

	"math/rand"

	"zcover/internal/radio"
	"zcover/internal/telemetry"
	"zcover/internal/vtime"
)

// Process-wide fault counters, one per fault type in the taxonomy.
var (
	mDeliveries  = telemetry.Default().Counter("chaos_deliveries_total")
	mDropped     = telemetry.Default().Counter("chaos_dropped_total")
	mCorrupted   = telemetry.Default().Counter("chaos_corrupted_total")
	mDuplicated  = telemetry.Default().Counter("chaos_duplicated_total")
	mDelayed     = telemetry.Default().Counter("chaos_delayed_total")
	mPartitioned = telemetry.Default().Counter("chaos_partitioned_total")
)

// Stats counts fault decisions made by one injector (process-wide totals
// are on the telemetry registry under chaos_*_total).
type Stats struct {
	// Deliveries is how many frame deliveries the injector inspected.
	Deliveries int64
	// Dropped counts Gilbert–Elliott channel losses.
	Dropped int64
	// Corrupted counts single-bit flips applied.
	Corrupted int64
	// Duplicated counts extra frame copies injected.
	Duplicated int64
	// Delayed counts frames given latency jitter.
	Delayed int64
	// Partitioned counts frames swallowed by an active partition.
	Partitioned int64
}

// Faults sums the fault decisions (deliveries inspected excluded).
func (s Stats) Faults() int64 {
	return s.Dropped + s.Corrupted + s.Duplicated + s.Delayed + s.Partitioned
}

// linkKey identifies one directed link on the medium.
type linkKey struct{ from, to string }

// linkState is the per-link fault stream: an independent RNG plus the
// Gilbert–Elliott channel state.
type linkState struct {
	rng *rand.Rand
	bad bool
}

// Injector applies a Profile to every frame crossing the medium. Create
// with New, wire with Attach. Safe for concurrent use: the interceptor is
// called from whichever goroutine is driving the simulation.
type Injector struct {
	profile Profile
	seed    int64

	mu        sync.Mutex
	clock     *vtime.SimClock
	epoch     time.Time
	links     map[linkKey]*linkState
	lastFault time.Time
	haveFault bool
	stats     Stats
}

// New creates an injector for the given profile and seed. The same
// (profile, seed) pair always produces the same fault sequence on the
// same traffic.
func New(profile Profile, seed int64) *Injector {
	return &Injector{
		profile: profile,
		seed:    seed,
		links:   make(map[linkKey]*linkState),
	}
}

// Profile reports the profile the injector was built with.
func (i *Injector) Profile() Profile { return i.profile }

// Attach installs the injector on the medium as its frame interceptor.
// Partition schedules are anchored at the medium's current simulated time.
func (i *Injector) Attach(m *radio.Medium) {
	i.mu.Lock()
	i.clock = m.Clock()
	i.epoch = i.clock.Now()
	i.mu.Unlock()
	m.SetInterceptor(i.Intercept)
}

// Stats returns a snapshot of the injector's fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// ImpairedSince reports whether the injector has applied any fault at or
// after the given simulated instant. The fuzz oracle uses it to downgrade
// findings whose "silence" window overlaps injected faults from confirmed
// to suspect.
func (i *Injector) ImpairedSince(t time.Time) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.haveFault && !i.lastFault.Before(t)
}

// link returns the fault stream for a directed link, creating it on first
// use with a seed mixed from the injector seed and both endpoint names.
func (i *Injector) link(from, to string) *linkState {
	k := linkKey{from, to}
	st, ok := i.links[k]
	if !ok {
		mixed := i.seed ^ int64(fnv64a(from)) ^ int64(fnv64a(to)*0x9E3779B97F4A7C15)
		st = &linkState{rng: rand.New(rand.NewSource(mixed))}
		i.links[k] = st
	}
	return st
}

// noteFault records the simulated instant of a fault decision (callers
// hold i.mu).
func (i *Injector) noteFault(now time.Time) {
	if !i.haveFault || now.After(i.lastFault) {
		i.lastFault = now
		i.haveFault = true
	}
}

// Intercept is the radio.InterceptFunc: it decides, per frame delivery,
// whether the receiver sees the frame and in what form. Fault order per
// delivery is fixed — partition, burst loss, corruption, jitter,
// duplication — and each decision draws from the link's own stream, so
// the sequence is reproducible per link whatever else is on the air.
func (i *Injector) Intercept(from, to string, raw []byte) []radio.Delivery {
	i.mu.Lock()
	defer i.mu.Unlock()
	var now time.Time
	if i.clock != nil {
		now = i.clock.Now()
	}
	i.stats.Deliveries++
	mDeliveries.Inc()

	for _, p := range i.profile.Partitions {
		if p.For <= 0 || p.Node == "" {
			continue
		}
		start := i.epoch.Add(p.From)
		if now.Before(start) || !now.Before(start.Add(p.For)) {
			continue
		}
		if strings.Contains(from, p.Node) || strings.Contains(to, p.Node) {
			i.stats.Partitioned++
			mPartitioned.Inc()
			i.noteFault(now)
			return nil
		}
	}

	st := i.link(from, to)

	// Advance the Gilbert–Elliott channel one step, then draw the loss.
	if st.bad {
		if i.profile.BadToGood > 0 && st.rng.Float64() < i.profile.BadToGood {
			st.bad = false
		}
	} else if i.profile.GoodToBad > 0 && st.rng.Float64() < i.profile.GoodToBad {
		st.bad = true
	}
	lossP := i.profile.GoodLoss
	if st.bad {
		lossP = i.profile.BadLoss
	}
	if lossP > 0 && st.rng.Float64() < lossP {
		i.stats.Dropped++
		mDropped.Inc()
		i.noteFault(now)
		return nil
	}

	out := raw
	if i.profile.Corrupt > 0 && len(raw) > 0 && st.rng.Float64() < i.profile.Corrupt {
		out = append([]byte(nil), raw...)
		out[st.rng.Intn(len(out))] ^= 1 << st.rng.Intn(8)
		i.stats.Corrupted++
		mCorrupted.Inc()
		i.noteFault(now)
	}

	var delay time.Duration
	if i.profile.Jitter > 0 && i.profile.JitterMax > 0 && st.rng.Float64() < i.profile.Jitter {
		delay = time.Duration(1 + st.rng.Int63n(int64(i.profile.JitterMax)))
		i.stats.Delayed++
		mDelayed.Inc()
		i.noteFault(now)
	}

	deliveries := []radio.Delivery{{Delay: delay, Raw: out}}
	if i.profile.Duplicate > 0 && st.rng.Float64() < i.profile.Duplicate {
		// The copy trails the original by a couple of milliseconds, like a
		// retransmission the receiver's MAC never asked for.
		deliveries = append(deliveries, radio.Delivery{Delay: delay + 2*time.Millisecond, Raw: out})
		i.stats.Duplicated++
		mDuplicated.Inc()
		i.noteFault(now)
	}
	return deliveries
}

// fnv64a is the FNV-1a hash, used to derive per-link seeds.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
