#!/bin/sh
# bench_compare.sh — run the fleet benchmarks and compare against the
# committed baseline (scripts/bench_baseline.txt). `make bench-compare`
# wraps it.
#
# When benchstat is on PATH the comparison is delegated to it (proper
# statistics across iterations). Otherwise a plain awk comparator prints
# old/new/delta for ns/op, B/op, and allocs/op per benchmark — no extra
# tooling required, which keeps the gate usable in hermetic containers.
#
#   ./scripts/bench_compare.sh
#   BENCHTIME=10x ./scripts/bench_compare.sh
set -eu

cd "$(dirname "$0")/.."

baseline="scripts/bench_baseline.txt"
if [ ! -f "$baseline" ]; then
    echo "bench_compare: no $baseline — run ./scripts/bench.sh -baseline first" >&2
    exit 2
fi

new="$(mktemp)"
trap 'rm -f "$new"' EXIT
BENCH_OUT="$(mktemp)" BENCH_RAW="$new" ./scripts/bench.sh >/dev/null 2>&1 || {
    echo "bench_compare: benchmark run failed; re-running verbosely" >&2
    BENCH_OUT="$(mktemp)" BENCH_RAW="$new" ./scripts/bench.sh
}

echo "== compare vs $baseline =="
if command -v benchstat >/dev/null 2>&1; then
    benchstat "$baseline" "$new"
    exit 0
fi

echo "(benchstat not on PATH; using built-in comparator)"
# Benchmark lines carry value/unit pairs; index both files by benchmark
# name (GOMAXPROCS suffix stripped) and print per-metric deltas.
printf "%-45s %-9s %14s %14s %9s\n" "benchmark" "metric" "old" "new" "delta"
awk '
function remember(tbl,    name, i) {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     tbl[name ":ns"] = $i
        if ($(i+1) == "B/op")      tbl[name ":B"] = $i
        if ($(i+1) == "allocs/op") tbl[name ":allocs"] = $i
    }
    names[name] = 1
}
NR == FNR { if ($1 ~ /^Benchmark/) remember(old); next }
           { if ($1 ~ /^Benchmark/) remember(new) }
END {
    for (name in names) {
        split("ns B allocs", m, " ")
        for (j in m) {
            key = name ":" m[j]
            if (!(key in old) || !(key in new)) continue
            o = old[key] + 0; n = new[key] + 0
            d = (o > 0) ? (n - o) * 100.0 / o : 0
            printf "%-45s %-9s %14.0f %14.0f %+8.1f%%\n", name, m[j], o, n, d
        }
    }
}' "$baseline" "$new" | sort
