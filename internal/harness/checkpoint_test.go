package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"zcover/internal/checkpoint"
	"zcover/internal/fleet"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// ckptJobs is a cheap three-campaign job list with real findings (a D1
// full campaign surfaces its first vulnerability inside two simulated
// minutes), so table AND bug-log determinism are both exercised.
func ckptJobs() []fleet.Job {
	return []fleet.Job{
		{Name: "ckpt/D1/full", Device: "D1", Strategy: fuzz.StrategyFull, Seed: 41, Budget: 2 * time.Minute},
		{Name: "ckpt/D1/vfuzz", Device: "D1", Baseline: true, Seed: 41, Budget: 2 * time.Minute},
		{Name: "ckpt/D2/full", Device: "D2", Strategy: fuzz.StrategyFull, Seed: 42, Budget: 2 * time.Minute},
	}
}

// renderOutcomes flattens outcomes into one deterministic byte string —
// the stand-in for a rendered table plus the bug log.
func renderOutcomes(t *testing.T, outs []FleetOutcome) string {
	t.Helper()
	var sb strings.Builder
	for i, o := range outs {
		raw, err := EncodeOutcome(o)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%d %s\n", i, raw)
		if res := o.Fuzz(); res != nil {
			if err := fuzz.WriteLog(&sb, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sb.String()
}

// runWithBugLog runs the jobs and returns the rendered outcomes plus the
// bug-log bytes the campaign layer emitted through the SetBugLog sink.
func runWithBugLog(t *testing.T, name string, jobs []fleet.Job, cfg fleet.Config) ([]FleetOutcome, string, error) {
	t.Helper()
	var buf bytes.Buffer
	SetBugLog(&buf)
	defer SetBugLog(nil)
	outs, err := runCampaigns(name, jobs, cfg)
	return outs, buf.String(), err
}

// TestCheckpointResumeAtEveryJobBoundary is the tentpole invariant: a
// campaign killed after any number of completed jobs — including with a
// torn half-written journal line — and resumed must produce outcomes,
// tables, and bug log byte-identical to the uninterrupted run.
func TestCheckpointResumeAtEveryJobBoundary(t *testing.T) {
	jobs := ckptJobs()
	wantOuts, wantLog, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutcomes(t, wantOuts)
	if wantLog == "" {
		t.Fatal("bug log empty — the job list no longer surfaces findings, so this test proves nothing")
	}

	// A complete journal to cut crash prefixes from. Workers=1 so the
	// journal's record order matches job order (any order would resume
	// correctly, but fixed prefixes make the failure mode legible).
	full := t.TempDir()
	if _, _, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: full},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(checkpoint.JournalPath(full, "ckpt", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != len(jobs)+1 {
		t.Fatalf("journal has %d lines, want manifest + %d jobs", len(lines), len(jobs))
	}

	for k := 0; k <= len(jobs); k++ {
		prefix := strings.Join(lines[:1+k], "")
		if k%2 == 1 {
			// Simulate a crash mid-append: a torn trailing line must be
			// recovered around, not corrupt the resume.
			prefix += `{"v":1,"type":"job","seq":` + fmt.Sprint(k+1) + `,"bo`
		}
		dir := t.TempDir()
		path := checkpoint.JournalPath(dir, "ckpt", 1, 1)
		if err := os.WriteFile(path, []byte(prefix), 0o644); err != nil {
			t.Fatal(err)
		}
		outs, log, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{
			Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir, Resume: true},
		})
		if err != nil {
			t.Fatalf("resume after %d jobs: %v", k, err)
		}
		if got := renderOutcomes(t, outs); got != want {
			t.Errorf("resume after %d jobs: outcomes differ from uninterrupted run", k)
		}
		if log != wantLog {
			t.Errorf("resume after %d jobs: bug log differs from uninterrupted run", k)
		}
	}
}

// TestShardMergeEqualsSingleRun: N shards journaled independently and
// merged must equal the 1-shard run byte-for-byte.
func TestShardMergeEqualsSingleRun(t *testing.T) {
	jobs := ckptJobs()
	wantOuts, wantLog, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderOutcomes(t, wantOuts)

	const n = 3
	dir := t.TempDir()
	for i := 1; i <= n; i++ {
		_, _, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{
			Workers: 1,
			Checkpoint: &fleet.CheckpointSpec{
				Dir: dir, Shard: fleet.Shard{Index: i, Count: n},
			},
		})
		sd, ok := err.(*ShardDone)
		if !ok {
			t.Fatalf("shard %d/%d: got %v, want *ShardDone", i, n, err)
		}
		if sd.JobsTotal != len(jobs) || sd.JobsRun != len(fleet.Shard{Index: i, Count: n}.Indices(len(jobs))) {
			t.Errorf("shard %d/%d: %+v", i, n, sd)
		}
		// A sharded invocation has no complete result set, so it must not
		// emit a partial bug log.
		if _, log, _ := runWithBugLog(t, "noop", nil, fleet.Config{Workers: 1}); log != "" {
			t.Errorf("shard %d/%d leaked a partial bug log", i, n)
		}
	}

	outs, log, err := runWithBugLog(t, "ckpt", jobs, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir, Merge: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderOutcomes(t, outs); got != want {
		t.Error("merged shards differ from the single-shard run")
	}
	if log != wantLog {
		t.Error("merged bug log differs from the single-shard run")
	}
}

// TestCheckpointRefusesSilentOverwrite: an existing journal without
// -resume is an error, never a silent double-run.
func TestCheckpointRefusesSilentOverwrite(t *testing.T) {
	jobs := []fleet.Job{{Name: "j", Device: "D1", Baseline: true, Seed: 1, Budget: time.Second}}
	dir := t.TempDir()
	spec := &fleet.CheckpointSpec{Dir: dir}
	if _, err := runCampaigns("x", jobs, fleet.Config{Workers: 1, Checkpoint: spec}); err != nil {
		t.Fatal(err)
	}
	_, err := runCampaigns("x", jobs, fleet.Config{Workers: 1, Checkpoint: spec})
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("existing journal accepted without -resume: %v", err)
	}
}

// TestResumeRejectsSpecDrift: a journal from a different job list (a
// changed seed) must be refused, not partially replayed.
func TestResumeRejectsSpecDrift(t *testing.T) {
	jobs := []fleet.Job{{Name: "j", Device: "D1", Baseline: true, Seed: 1, Budget: time.Second}}
	dir := t.TempDir()
	if _, err := runCampaigns("x", jobs, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir},
	}); err != nil {
		t.Fatal(err)
	}
	drifted := []fleet.Job{{Name: "j", Device: "D1", Baseline: true, Seed: 2, Budget: time.Second}}
	_, err := runCampaigns("x", drifted, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir, Resume: true},
	})
	if err == nil || !strings.Contains(err.Error(), "different job list") {
		t.Fatalf("spec drift accepted: %v", err)
	}
}

// TestResumeReportsUndecodableRecord: a record that passes its CRC but
// cannot decode (codec drift) must fail the resume loudly — the
// "detected and reported, not silently replayed" half of the contract.
func TestResumeReportsUndecodableRecord(t *testing.T) {
	jobs := []fleet.Job{{Name: "j", Device: "D1", Baseline: true, Seed: 1, Budget: time.Second}}
	hash, err := checkpoint.SpecHash(campaignSpec{Campaign: "x", Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, err := checkpoint.Create(checkpoint.JournalPath(dir, "x", 1, 1), checkpoint.Manifest{
		Campaign: "x", SpecHash: hash, TotalJobs: 1, ShardIndex: 1, ShardCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(checkpoint.JobRecord{
		Index: 0, Label: "j", Attempts: 1, Body: json.RawMessage(`{"campaign":42}`),
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = runCampaigns("x", jobs, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir, Resume: true},
	})
	if err == nil {
		t.Fatal("undecodable record silently ignored")
	}
}

// TestMergeMissingShardFails: merging with a shard's journal absent must
// name the gap instead of rendering a partial table.
func TestMergeMissingShardFails(t *testing.T) {
	jobs := ckptJobs()
	dir := t.TempDir()
	if _, err := runCampaigns("ckpt", jobs, fleet.Config{
		Workers: 1,
		Checkpoint: &fleet.CheckpointSpec{
			Dir: dir, Shard: fleet.Shard{Index: 1, Count: 2},
		},
	}); err == nil {
		t.Fatal("sharded run returned no ShardDone")
	} else if _, ok := err.(*ShardDone); !ok {
		t.Fatal(err)
	}
	_, err := runCampaigns("ckpt", jobs, fleet.Config{
		Workers: 1, Checkpoint: &fleet.CheckpointSpec{Dir: dir, Merge: true},
	})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("incomplete merge accepted: %v", err)
	}
}

// TestRunZCoverResumable covers the single-campaign (cmd/zcover) path:
// the replayed campaign is byte-identical, and an existing journal is
// refused without resume.
func TestRunZCoverResumable(t *testing.T) {
	dir := t.TempDir()
	key := CampaignKey{Target: "D1", Strategy: fuzz.StrategyFull, Duration: 2 * time.Minute, Seed: 41}
	newTB := func() *testbed.Testbed {
		tb, err := testbed.New("D1", 41)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	c1, resumed, err := RunZCoverResumable(dir, false, key, newTB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh run claimed to be resumed")
	}
	if _, _, err := RunZCoverResumable(dir, false, key, newTB(), Options{}); err == nil {
		t.Fatal("existing journal accepted without resume")
	}
	c2, resumed, err := RunZCoverResumable(dir, true, key, newTB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("journaled campaign re-ran instead of replaying")
	}
	raw1, err := EncodeOutcome(FleetOutcome{Campaign: c1})
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := EncodeOutcome(FleetOutcome{Campaign: c2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("replayed campaign differs from the original")
	}
	// A drifted key (different seed) must be refused, not replayed.
	drifted := key
	drifted.Seed = 99
	if _, _, err := RunZCoverResumable(dir, true, drifted, newTB(), Options{}); err == nil {
		t.Error("drifted campaign key accepted")
	}
}
