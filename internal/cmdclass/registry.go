package cmdclass

import (
	_ "embed"
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

//go:embed spec_data.xml
var specXML []byte

// Registry is a parsed command-class database with lookup, clustering, and
// prioritisation queries. It is immutable after construction and safe for
// concurrent use.
type Registry struct {
	release string
	byID    map[ClassID]*Class
	ordered []*Class // sorted by ID
}

// xmlSpec mirrors the spec_data.xml document structure.
type xmlSpec struct {
	XMLName xml.Name   `xml:"zwave_command_classes"`
	Release string     `xml:"release,attr"`
	Classes []xmlClass `xml:"cmd_class"`
}

type xmlClass struct {
	Key      string   `xml:"key,attr"`
	Name     string   `xml:"name,attr"`
	Version  int      `xml:"version,attr"`
	Category string   `xml:"category,attr"`
	Scope    string   `xml:"scope,attr"`
	Commands []xmlCmd `xml:"cmd"`
}

type xmlCmd struct {
	Key    string     `xml:"key,attr"`
	Name   string     `xml:"name,attr"`
	Type   string     `xml:"type,attr"`
	Params []xmlParam `xml:"param"`
}

type xmlParam struct {
	Name   string `xml:"name,attr"`
	Type   string `xml:"type,attr"`
	Min    string `xml:"min,attr"`
	Max    string `xml:"max,attr"`
	Values string `xml:"values,attr"`
}

var (
	loadOnce sync.Once
	loaded   *Registry
	loadErr  error
)

// Load returns the registry built from the embedded specification database.
// The database is parsed once; subsequent calls return the same Registry.
func Load() (*Registry, error) {
	loadOnce.Do(func() { loaded, loadErr = Parse(specXML) })
	return loaded, loadErr
}

// MustLoad is Load for callers that treat a broken embedded spec as a
// programming error (tests, command-line tools, benchmarks).
func MustLoad() *Registry {
	reg, err := Load()
	if err != nil {
		panic(err)
	}
	return reg
}

// Parse builds a Registry from an XML document in the spec_data.xml format.
func Parse(data []byte) (*Registry, error) {
	var doc xmlSpec
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("cmdclass: parsing spec XML: %w", err)
	}
	reg := &Registry{
		release: doc.Release,
		byID:    make(map[ClassID]*Class, len(doc.Classes)),
	}
	for _, xc := range doc.Classes {
		cls, err := buildClass(xc)
		if err != nil {
			return nil, fmt.Errorf("cmdclass: class %q: %w", xc.Name, err)
		}
		if _, dup := reg.byID[cls.ID]; dup {
			return nil, fmt.Errorf("cmdclass: duplicate class ID %s", cls.ID)
		}
		reg.byID[cls.ID] = cls
		reg.ordered = append(reg.ordered, cls)
	}
	sort.Slice(reg.ordered, func(i, j int) bool { return reg.ordered[i].ID < reg.ordered[j].ID })
	return reg, nil
}

// buildClass converts one XML class element into the domain type.
func buildClass(xc xmlClass) (*Class, error) {
	id, err := parseHexByte(xc.Key)
	if err != nil {
		return nil, fmt.Errorf("bad key %q: %w", xc.Key, err)
	}
	cat, err := parseCategory(xc.Category)
	if err != nil {
		return nil, err
	}
	scope, err := parseScope(xc.Scope)
	if err != nil {
		return nil, err
	}
	cls := &Class{
		ID:       ClassID(id),
		Name:     xc.Name,
		Version:  xc.Version,
		Category: cat,
		Scope:    scope,
		Commands: make([]Command, 0, len(xc.Commands)),
	}
	seen := make(map[CommandID]bool, len(xc.Commands))
	for _, xcmd := range xc.Commands {
		cmd, err := buildCommand(xcmd)
		if err != nil {
			return nil, fmt.Errorf("command %q: %w", xcmd.Name, err)
		}
		if seen[cmd.ID] {
			return nil, fmt.Errorf("duplicate command ID %s", cmd.ID)
		}
		seen[cmd.ID] = true
		cls.Commands = append(cls.Commands, cmd)
	}
	sort.Slice(cls.Commands, func(i, j int) bool { return cls.Commands[i].ID < cls.Commands[j].ID })
	return cls, nil
}

// buildCommand converts one XML cmd element.
func buildCommand(xc xmlCmd) (Command, error) {
	id, err := parseHexByte(xc.Key)
	if err != nil {
		return Command{}, fmt.Errorf("bad key %q: %w", xc.Key, err)
	}
	var dir Direction
	switch xc.Type {
	case "controlling":
		dir = DirControlling
	case "supporting":
		dir = DirSupporting
	default:
		return Command{}, fmt.Errorf("unknown direction %q", xc.Type)
	}
	cmd := Command{ID: CommandID(id), Name: xc.Name, Dir: dir}
	for i, xp := range xc.Params {
		p, err := buildParam(xp)
		if err != nil {
			return Command{}, fmt.Errorf("param %d (%s): %w", i, xp.Name, err)
		}
		if p.Kind == ParamVariadic && i != len(xc.Params)-1 {
			return Command{}, fmt.Errorf("variadic param %q must be last", xp.Name)
		}
		cmd.Params = append(cmd.Params, p)
	}
	return cmd, nil
}

// buildParam converts one XML param element.
func buildParam(xp xmlParam) (Param, error) {
	p := Param{Name: xp.Name}
	switch xp.Type {
	case "byte", "":
		p.Kind = ParamByte
	case "range":
		p.Kind = ParamRange
	case "enum":
		p.Kind = ParamEnum
	case "nodeid":
		p.Kind = ParamNodeID
	case "bitmask":
		p.Kind = ParamBitmask
	case "variadic":
		p.Kind = ParamVariadic
	default:
		return Param{}, fmt.Errorf("unknown param type %q", xp.Type)
	}
	if p.Kind == ParamRange {
		minVal, err := parseDecByte(xp.Min)
		if err != nil {
			return Param{}, fmt.Errorf("bad min %q: %w", xp.Min, err)
		}
		maxVal, err := parseDecByte(xp.Max)
		if err != nil {
			return Param{}, fmt.Errorf("bad max %q: %w", xp.Max, err)
		}
		if minVal > maxVal {
			return Param{}, fmt.Errorf("min %d > max %d", minVal, maxVal)
		}
		p.Min, p.Max = minVal, maxVal
	}
	if p.Kind == ParamEnum {
		if xp.Values == "" {
			return Param{}, fmt.Errorf("enum param without values")
		}
		for _, tok := range strings.Split(xp.Values, ",") {
			v, err := parseHexByte(strings.TrimSpace(tok))
			if err != nil {
				return Param{}, fmt.Errorf("bad enum value %q: %w", tok, err)
			}
			p.Values = append(p.Values, v)
		}
	}
	return p, nil
}

func parseHexByte(s string) (byte, error) {
	s = strings.TrimPrefix(s, "0x")
	v, err := strconv.ParseUint(s, 16, 8)
	if err != nil {
		return 0, err
	}
	return byte(v), nil
}

func parseDecByte(s string) (byte, error) {
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, err
	}
	return byte(v), nil
}

func parseCategory(s string) (Category, error) {
	switch s {
	case "application":
		return CategoryApplication, nil
	case "transport":
		return CategoryTransport, nil
	case "management":
		return CategoryManagement, nil
	case "network":
		return CategoryNetwork, nil
	default:
		return 0, fmt.Errorf("unknown category %q", s)
	}
}

func parseScope(s string) (Scope, error) {
	switch s {
	case "controller":
		return ScopeController, nil
	case "slave":
		return ScopeSlave, nil
	case "both":
		return ScopeBoth, nil
	default:
		return 0, fmt.Errorf("unknown scope %q", s)
	}
}

// Release reports the spec release label (e.g. "2023B").
func (r *Registry) Release() string { return r.release }

// Len reports the number of command classes in the database.
func (r *Registry) Len() int { return len(r.ordered) }

// Get returns the class with the given ID.
func (r *Registry) Get(id ClassID) (*Class, bool) {
	c, ok := r.byID[id]
	return c, ok
}

// All returns the classes sorted by ID. The slice is a copy; the pointed-to
// classes are shared and must not be mutated.
func (r *Registry) All() []*Class {
	out := make([]*Class, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// ByCategory returns the classes in the given functional cluster, sorted by
// ID. This is the clustering step of §III-C1.
func (r *Registry) ByCategory(cat Category) []*Class {
	var out []*Class
	for _, c := range r.ordered {
		if c.Category == cat {
			out = append(out, c)
		}
	}
	return out
}

// ControllerCluster returns the classes a Z-Wave controller is expected to
// support according to the specification's functional clustering —
// application control, transport encapsulation, management, and networking
// classes whose scope is not slave-only (§III-C1 of the paper).
func (r *Registry) ControllerCluster() []*Class {
	var out []*Class
	for _, c := range r.ordered {
		if c.ControllerRelevant() {
			out = append(out, c)
		}
	}
	return out
}

// PrioritizeByCommandCount orders the given classes for fuzzing: classes
// with more commands first (the paper's intuition that more functionality
// means more room for implementation bugs), breaking ties by ascending ID
// for determinism.
func PrioritizeByCommandCount(classes []*Class) []*Class {
	out := make([]*Class, len(classes))
	copy(out, classes)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Commands) != len(out[j].Commands) {
			return len(out[i].Commands) > len(out[j].Commands)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CommandDistribution returns the (class, command-count) series for the
// named classes, in the order given — the data behind Figure 5 of the
// paper. Unknown names are skipped.
func (r *Registry) CommandDistribution(names []string) []ClassCommandCount {
	byName := make(map[string]*Class, len(r.ordered))
	for _, c := range r.ordered {
		byName[c.Name] = c
	}
	out := make([]ClassCommandCount, 0, len(names))
	for _, n := range names {
		if c, ok := byName[n]; ok {
			out = append(out, ClassCommandCount{Class: c.Name, ID: c.ID, Commands: len(c.Commands)})
		}
	}
	return out
}

// ClassCommandCount is one bar of the Figure 5 distribution.
type ClassCommandCount struct {
	Class    string
	ID       ClassID
	Commands int
}
